// Package platform bundles the three simulation substrates — virtual heap,
// memory hierarchy and energy model — into the Platform that every DDT
// simulation runs on, and snapshots them into the paper's 4-metric cost
// vector.
//
// One simulation (one execution of a network application over one trace
// with one DDT assignment, §3.1 of the paper) uses exactly one Platform;
// creating a fresh Platform resets all architectural and accounting state,
// which keeps simulations independent and deterministic.
package platform

import (
	"repro/internal/astream"
	"repro/internal/energy"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/vheap"
)

// Platform is the simulated embedded platform a network application
// executes on.
type Platform struct {
	Heap  *vheap.Heap
	Mem   *memsim.Hierarchy
	Model energy.Model

	// Arena mode (UseArenas): per-role address arenas and their 1-based
	// lanes, keyed by role name. Empty outside arena mode.
	roleOrder  []string
	roleArenas map[string]*vheap.Arena
	roleLanes  map[string]int
}

// New builds a platform from the memory-subsystem configuration, deriving
// the energy model from the cache geometries.
func New(cfg memsim.Config) *Platform {
	return &Platform{
		Heap:  vheap.New(),
		Mem:   memsim.New(cfg),
		Model: energy.CACTILike(cfg),
	}
}

// Default builds a platform with the default configuration (8 KiB L1,
// 128 KiB L2, 1.6 GHz clock — see memsim.DefaultConfig).
func Default() *Platform {
	return New(memsim.DefaultConfig())
}

// UseArenas switches the platform to the per-role arena address model:
// each named role gets a private 256 MiB region of the virtual address
// space (in the given order, which assigns lanes 1..len(roles)), so one
// role's heap addresses can never depend on another role's allocation
// behaviour. Call it once, before the application runs. Footprint
// accounting is unchanged — the heap's peak is the high-water mark of
// the summed arena live bytes — but cache behaviour differs from the
// shared-heap model (blocks land at different addresses), so results
// from the two address models must never be compared point-for-point.
func (p *Platform) UseArenas(roles []string) {
	if p.roleArenas != nil {
		panic("platform: UseArenas called twice")
	}
	p.roleOrder = append([]string(nil), roles...)
	p.roleArenas = make(map[string]*vheap.Arena, len(roles))
	p.roleLanes = make(map[string]int, len(roles))
	for i, r := range p.roleOrder {
		p.roleArenas[r] = p.Heap.NewArena(r)
		p.roleLanes[r] = i + 1
	}
}

// ArenaMode reports whether UseArenas has partitioned the platform.
func (p *Platform) ArenaMode() bool { return p.roleArenas != nil }

// ArenaFor returns the arena and lane of a role in arena mode; ok is
// false outside arena mode or for an unknown role.
func (p *Platform) ArenaFor(role string) (a *vheap.Arena, lane int, ok bool) {
	a, ok = p.roleArenas[role]
	if !ok {
		return nil, 0, false
	}
	return a, p.roleLanes[role], true
}

// CaptureComposed attaches a compositional capture to an arena-mode
// platform and returns the recorder: the event stream is segmented at
// the operation boundaries the DDT layer announces, each segment routed
// to the sub-stream of its owning lane, with per-arena footprint deltas
// recorded at every segment end. One run therefore captures the
// (role, kind) sub-stream of every role at once, plus the kind-invariant
// ambient lane and operation schedule. Detach with EndCapture before
// Recorder.Finish, as with Capture.
func (p *Platform) CaptureComposed() *astream.ComposedRecorder {
	if p.roleArenas == nil {
		panic("platform: CaptureComposed requires UseArenas")
	}
	meters := make([]astream.LaneMeter, 0, len(p.roleOrder)+1)
	meters = append(meters, p.Heap.DefaultArena())
	for _, r := range p.roleOrder {
		meters = append(meters, p.roleArenas[r])
	}
	cr := astream.NewComposedRecorder(p.roleOrder, meters)
	p.Mem.SetEventSink(cr)
	return cr
}

// Capture tees the platform's activity into rec: every memory event goes
// through the hierarchy's event sink and every footprint high-water-mark
// growth through the heap's peak hook. The recorded stream is the
// platform-invariant behavior of the run — replaying it (internal/
// astream) against any other memory-subsystem configuration reproduces
// that configuration's live metrics exactly, without re-executing the
// application. Attach before the application runs; the capture overhead
// is a few nanoseconds per event on the live simulation.
func (p *Platform) Capture(rec *astream.Recorder) {
	p.Mem.SetEventSink(rec)
	p.Heap.SetPeakHook(rec.RecordPeak)
}

// EndCapture detaches a recorder attached by Capture, flushing any ALU
// ops the hierarchy has not yet reported. Call it after the application
// run (normal or aborted), before Recorder.Finish.
func (p *Platform) EndCapture() {
	p.Mem.SetEventSink(nil)
	p.Heap.SetPeakHook(nil)
}

// AbortWhen arms the platform's early-abort hook: every everyProbes
// cache-line probes the running 4-metric cost vector is offered to check,
// and a true result stops the simulation by panicking with
// *memsim.Aborted (which the exploration Engine recovers and records as
// an aborted run). All four metrics only grow as a simulation proceeds,
// so a check that proves the partial vector already hopeless — e.g.
// dominated by a finished Pareto-front member beyond a safety margin —
// is sound: the finished run could only have been worse.
func (p *Platform) AbortWhen(everyProbes uint64, check func(metrics.Vector) bool) {
	p.Mem.SetAbortCheck(everyProbes, func() bool {
		return check(p.Metrics())
	})
}

// LineFamily is one geometry family of a platform sweep: the indexes of
// the configurations sharing an address-mapping (L1) line size. Within
// a family the all-geometry replay kernel (memsim.GeomSim) evaluates
// every member in a single probe pass; across families only the stream
// decode is shared.
type LineFamily = memsim.LineFamily

// LineFamilies partitions platform configurations into line-size
// families, in first-appearance order — the same grouping the replay
// planner uses (memsim.LineFamiliesOf), so sweep-side and replay-side
// partitioning can never diverge. Sweeps and the exploration engine
// group their platform points through this before replaying, so a
// K-platform sweep costs one probe pass per distinct line size rather
// than one per platform.
func LineFamilies(cfgs []memsim.Config) []LineFamily {
	return memsim.LineFamiliesOf(cfgs)
}

// Metrics snapshots the platform into the 4-metric cost vector: dissipated
// energy, execution time, memory accesses and peak memory footprint.
func (p *Platform) Metrics() metrics.Vector {
	counts := p.Mem.Counts()
	seconds := p.Mem.Seconds()
	return metrics.Vector{
		Energy:    p.Model.Energy(counts, seconds),
		Time:      seconds,
		Accesses:  float64(counts.Accesses()),
		Footprint: float64(p.Heap.PeakLiveBytes()),
	}
}
