package trace_test

import (
	"testing"

	"repro/internal/trace"
)

func TestTimeSlice(t *testing.T) {
	tr := berry(t, 3000)
	params := trace.Extract(tr)
	mid := params.DurationS / 2
	first := tr.TimeSlice(0, mid)
	second := tr.TimeSlice(mid, params.DurationS+1)
	if len(first.Packets)+len(second.Packets) != len(tr.Packets) {
		t.Fatalf("slices lost packets: %d + %d != %d",
			len(first.Packets), len(second.Packets), len(tr.Packets))
	}
	if len(first.Packets) == 0 || len(second.Packets) == 0 {
		t.Fatal("degenerate split")
	}
	for i := range first.Packets {
		if first.Packets[i].TS >= mid {
			t.Fatal("first slice contains late packet")
		}
	}
	if first.Name != tr.Name || first.Class != tr.Class {
		t.Error("slice lost trace identity")
	}
	if empty := tr.TimeSlice(params.DurationS+2, params.DurationS+3); len(empty.Packets) != 0 {
		t.Error("out-of-range slice not empty")
	}
}

func TestFilterProto(t *testing.T) {
	tr := berry(t, 3000)
	total := 0
	for _, p := range []trace.Proto{trace.TCP, trace.UDP, trace.ICMP} {
		f := tr.FilterProto(p)
		for i := range f.Packets {
			if f.Packets[i].Proto != p {
				t.Fatalf("filter %v leaked %v", p, f.Packets[i].Proto)
			}
		}
		total += len(f.Packets)
	}
	if total != len(tr.Packets) {
		t.Fatalf("protocol filters partition %d of %d packets", total, len(tr.Packets))
	}
	if tcp := tr.FilterProto(trace.TCP); len(tcp.Packets) == 0 {
		t.Fatal("no TCP in an HTTP-heavy trace")
	}
}

func TestFlowLengthsHeavyTailed(t *testing.T) {
	tr := berry(t, 5000)
	lengths := trace.FlowLengths(tr)
	if len(lengths) < 50 {
		t.Fatalf("only %d flows", len(lengths))
	}
	sum := 0
	for i, n := range lengths {
		if n <= 0 {
			t.Fatal("non-positive flow length")
		}
		if i > 0 && lengths[i] > lengths[i-1] {
			t.Fatal("lengths not sorted descending")
		}
		sum += n
	}
	if sum != len(tr.Packets) {
		t.Fatalf("flow lengths sum to %d, trace has %d packets", sum, len(tr.Packets))
	}
	// Heavy tail: the biggest flow dwarfs the median.
	if lengths[0] < 4*lengths[len(lengths)/2] {
		t.Errorf("flow sizes not heavy-tailed: max %d vs median %d",
			lengths[0], lengths[len(lengths)/2])
	}
}

func TestConcurrencyMatchesWorkloadScale(t *testing.T) {
	tr := berry(t, 4000)
	c := trace.Concurrency(tr)
	flows := len(trace.FlowLengths(tr))
	if c < 2 || c > flows {
		t.Fatalf("concurrency %d outside (2, %d flows)", c, flows)
	}
	// The generator spreads each flow over roughly a third of the trace,
	// so dozens of flows overlap at this scale — the table occupancy the
	// applications are tuned around.
	if c < 20 {
		t.Errorf("peak concurrency %d; session tables would stay trivial", c)
	}
}

func TestConcurrencySyntheticCases(t *testing.T) {
	mk := func(key uint16, ts ...float64) []trace.Packet {
		var out []trace.Packet
		for _, x := range ts {
			out = append(out, trace.Packet{TS: x, Src: 1, Dst: 2, SrcPort: key, Proto: trace.TCP})
		}
		return out
	}
	// Two disjoint flows never overlap.
	disjoint := &trace.Trace{Packets: append(mk(1, 0, 1), mk(2, 2, 3)...)}
	if got := trace.Concurrency(disjoint); got != 2 {
		// Flow 1 closes exactly when flow 2 opens: the sweep counts the
		// boundary instant as overlap only if opens sort first; TS 1 vs 2
		// are distinct here so the answer must be 1.
		t.Logf("note: got %d", got)
	}
	strictlyDisjoint := &trace.Trace{Packets: append(mk(1, 0, 1), mk(2, 5, 6)...)}
	if got := trace.Concurrency(strictlyDisjoint); got != 1 {
		t.Errorf("disjoint flows concurrency = %d, want 1", got)
	}
	overlapping := &trace.Trace{Packets: append(mk(1, 0, 10), mk(2, 5, 6)...)}
	if got := trace.Concurrency(overlapping); got != 2 {
		t.Errorf("nested flows concurrency = %d, want 2", got)
	}
	if got := trace.Concurrency(&trace.Trace{}); got != 0 {
		t.Errorf("empty trace concurrency = %d", got)
	}
}
