package trace_test

import (
	"testing"

	"repro/internal/trace"
)

// The long preset keeps the network's traffic shape: same seed and mix,
// packet count raised to LongPackets, time span scaled in proportion so
// throughput and concurrent-flow depth are preserved rather than
// compressed.
func TestLongConfig(t *testing.T) {
	base := trace.BuiltinConfigs()[0]
	cfg, err := trace.LongConfig(base.Name)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != base.Name+"-1M" {
		t.Fatalf("long preset named %q", cfg.Name)
	}
	if cfg.Packets != trace.LongPackets {
		t.Fatalf("long preset has %d packets", cfg.Packets)
	}
	scale := float64(trace.LongPackets) / float64(base.Packets)
	if got, want := cfg.DurationS, base.DurationS*scale; got != want {
		t.Fatalf("long preset duration %v, want %v", got, want)
	}
	if cfg.Seed != base.Seed || cfg.Nodes != base.Nodes || cfg.MTU != base.MTU {
		t.Fatalf("long preset changed the network: %+v", cfg)
	}
	if _, err := trace.LongConfig("no-such-trace"); err == nil {
		t.Fatal("unknown base accepted")
	}
}

func TestBuiltinLongName(t *testing.T) {
	// The packets override keeps the test cheap; the preset's duration
	// scaling still applies, so the short generation run spans the long
	// window's early seconds at the network's native arrival rate.
	tr, err := trace.Builtin("FLA-1M", 4000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "FLA-1M" || len(tr.Packets) != 4000 {
		t.Fatalf("got %q with %d packets", tr.Name, len(tr.Packets))
	}
	if _, err := trace.Builtin("no-such-trace-1M", 0); err == nil {
		t.Fatal("unknown long preset accepted")
	}
}

// Generation must not drown the measurements that consume long traces:
// the packet slice is preallocated from the config hint and the
// chronological sort runs on a concrete comparison, not the reflection
// swapper, so a million-packet trace generates in well under a second.
func BenchmarkGenerateLong(b *testing.B) {
	cfg, err := trace.LongConfig("FLA")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := trace.Generate(cfg)
		if len(tr.Packets) != trace.LongPackets {
			b.Fatal("short trace")
		}
	}
}
