package trace_test

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// FuzzRead hammers the trace parser with arbitrary record lines: it must
// reject or accept them gracefully — never panic — and anything it
// accepts must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("0.5 10.0.1.2 192.168.0.9 1024 80 tcp 1400 1 \"/index.html\"")
	f.Add("0 0.0.0.0 255.255.255.255 0 0 icmp 0 3 \"\"")
	f.Add("not a packet at all")
	f.Add("1 2 3 4 5 6 7 8 9 10 11")
	f.Add("0.1 999.1.1.1 1.1.1.1 1 1 tcp 40 0 \"x\"")
	f.Add("NaN 1.2.3.4 5.6.7.8 1 1 udp 40 0 \"\"")
	f.Fuzz(func(t *testing.T, line string) {
		in := "# ddtr-trace v1\n# name: fuzz\n" + line + "\n"
		tr, err := trace.Read(strings.NewReader(in))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var buf strings.Builder
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := trace.Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(again.Packets) != len(tr.Packets) {
			t.Fatalf("round trip changed packet count: %d vs %d",
				len(again.Packets), len(tr.Packets))
		}
	})
}

// FuzzParseIPv4 checks the address parser never panics and only accepts
// strings its formatter can reproduce.
func FuzzParseIPv4(f *testing.F) {
	f.Add("1.2.3.4")
	f.Add("256.0.0.1")
	f.Add("....")
	f.Add("")
	f.Add("10.0.0.0.1")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := trace.ParseIPv4(s)
		if err != nil {
			return
		}
		back, err := trace.ParseIPv4(trace.FormatIPv4(a))
		if err != nil || back != a {
			t.Fatalf("accepted address %q does not round trip", s)
		}
	})
}
