// Package trace models the packet traces that drive every simulation, and
// the network-parameter extraction of the paper's tool chain.
//
// The paper validates its methodology on "a total of 10 traces from 8
// different networks": three NLANR backbone/campus collection points and
// five Dartmouth campus wireless buildings [Kotz & Essien, MobiCom 2002].
// Those archives are not redistributable here, so this package provides
// deterministic synthetic generators with the same shape: heavy-tailed
// flow sizes, Zipf destination popularity, per-class packet-size mixes and
// node counts. Ten built-in configurations mirror the paper's trace set by
// name (FLA, SDC, BWY-I/II; Berry, Brown, Collis, Sudikoff,
// Whittemore-I/II). The exploration methodology consumes only the network
// parameters the paper names — number of nodes, throughput, packet sizes —
// which Extract recovers from any trace, synthetic or parsed from disk.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xrand"
)

// Proto is the transport protocol of a packet.
type Proto uint8

// Transport protocols used by the generators and applications.
const (
	TCP Proto = iota
	UDP
	ICMP
)

// String returns the protocol mnemonic.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	case ICMP:
		return "icmp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Flags mark flow-lifecycle events on a packet.
type Flags uint8

// Flag bits.
const (
	SYN Flags = 1 << iota // first packet of a flow
	FIN                   // last packet of a flow
)

// Packet is one trace record. Fields are the ones the NetBench
// applications consume: addressing for Route/IPchains/DRR, the request
// path for URL switching, SYN/FIN for session lifecycles.
type Packet struct {
	TS      float64 // seconds since trace start
	Src     uint32  // IPv4 source address
	Dst     uint32  // IPv4 destination address
	SrcPort uint16
	DstPort uint16
	Proto   Proto
	Size    uint16 // bytes on the wire
	Flags   Flags
	Payload string // HTTP request path on the first packet of HTTP flows
}

// FlowKey identifies the 5-tuple of a packet.
type FlowKey struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Proto            Proto
}

// Key returns the packet's flow 5-tuple.
func (p *Packet) Key() FlowKey {
	return FlowKey{p.Src, p.Dst, p.SrcPort, p.DstPort, p.Proto}
}

// Class distinguishes the two network families of the paper's trace set.
type Class uint8

// Trace classes.
const (
	Campus   Class = iota // NLANR-style backbone/campus collection point
	Wireless              // Dartmouth-style wireless building
)

// String returns the class name.
func (c Class) String() string {
	if c == Campus {
		return "campus"
	}
	return "wireless"
}

// Trace is a named packet trace from one network.
type Trace struct {
	Name    string
	Network string
	Class   Class
	Packets []Packet
}

// Params are the network parameters the exploration extracts from a trace
// (§3.2: "the number of nodes in the network, the throughput of the
// network and the typical packet sizes used").
type Params struct {
	Nodes          int // distinct addresses observed
	Flows          int // distinct 5-tuples observed
	PacketCount    int
	DurationS      float64 // observed time span
	ThroughputBps  float64 // bits per second over the span
	MeanPacketSize float64 // bytes
	MaxPacketSize  int     // bytes (the trace's effective MTU)
	HTTPShare      float64 // fraction of packets on port 80
}

// Extract recovers the network parameters from a trace. This is the role
// of the first (Perl) tool of the paper's framework: "parsing the
// available network traces and extracting the network parameters from the
// raw data".
func Extract(t *Trace) Params {
	var p Params
	p.PacketCount = len(t.Packets)
	if p.PacketCount == 0 {
		return p
	}
	nodes := make(map[uint32]struct{})
	flows := make(map[FlowKey]struct{})
	var bytes uint64
	var http int
	first, last := t.Packets[0].TS, t.Packets[0].TS
	for i := range t.Packets {
		pk := &t.Packets[i]
		nodes[pk.Src] = struct{}{}
		nodes[pk.Dst] = struct{}{}
		flows[pk.Key()] = struct{}{}
		bytes += uint64(pk.Size)
		if int(pk.Size) > p.MaxPacketSize {
			p.MaxPacketSize = int(pk.Size)
		}
		if pk.DstPort == 80 || pk.SrcPort == 80 {
			http++
		}
		if pk.TS < first {
			first = pk.TS
		}
		if pk.TS > last {
			last = pk.TS
		}
	}
	p.Nodes = len(nodes)
	p.Flows = len(flows)
	p.DurationS = last - first
	p.MeanPacketSize = float64(bytes) / float64(p.PacketCount)
	if p.DurationS > 0 {
		p.ThroughputBps = float64(bytes) * 8 / p.DurationS
	}
	p.HTTPShare = float64(http) / float64(p.PacketCount)
	return p
}

// String renders the parameters the way the extraction tool reports them.
func (p Params) String() string {
	return fmt.Sprintf(
		"nodes=%d flows=%d packets=%d duration=%.2fs throughput=%.3gMbps meanpkt=%.0fB mtu=%dB http=%.0f%%",
		p.Nodes, p.Flows, p.PacketCount, p.DurationS, p.ThroughputBps/1e6,
		p.MeanPacketSize, p.MaxPacketSize, p.HTTPShare*100)
}

// GenConfig parameterizes the synthetic generator.
type GenConfig struct {
	Name         string
	Network      string
	Class        Class
	Seed         uint64
	Nodes        int     // hosts on the monitored network
	Packets      int     // total packets to emit
	DurationS    float64 // trace time span
	MTU          int     // maximum packet size
	MeanFlowPkts float64 // mean flow length (Pareto-distributed)
	ZipfS        float64 // destination/URL popularity skew
	HTTPFraction float64 // fraction of flows that are HTTP requests
}

// urlPool is the set of request paths HTTP flows draw from, mirroring the
// pattern tables of the URL-switching application.
var urlPool = []string{
	"/index.html",
	"/images/banner.gif",
	"/images/logo.png",
	"/news/today.html",
	"/cgi-bin/search",
	"/cgi-bin/login",
	"/static/style.css",
	"/static/app.js",
	"/video/stream.rm",
	"/audio/clip.ra",
	"/mail/inbox",
	"/mail/compose",
	"/catalog/items",
	"/catalog/item/4711",
	"/download/update.bin",
	"/ads/rotator.cgi",
	"/weather/today",
	"/sports/scores",
	"/docs/manual.pdf",
	"/feed/rss.xml",
}

// Generate builds a deterministic synthetic trace from cfg. The same
// config always yields the identical trace.
func Generate(cfg GenConfig) *Trace {
	if cfg.Nodes < 2 {
		panic("trace: GenConfig.Nodes must be at least 2")
	}
	if cfg.Packets <= 0 {
		panic("trace: GenConfig.Packets must be positive")
	}
	rng := xrand.New(cfg.Seed)
	dstZipf := xrand.NewZipf(rng.Fork(1), cfg.Nodes, cfg.ZipfS)
	urlZipf := xrand.NewZipf(rng.Fork(2), len(urlPool), 1.1)
	r := rng.Fork(3)

	// Address plan: each internal host sits in its own /24 subnet of the
	// 10.0.0.0/8 campus space (the prefix diversity an IPv4 routing table
	// actually sees), plus a pool of popular external servers — both
	// backbone and wireless clients talk to the wider Internet.
	netBase := uint32(0x0a000000) | uint32(cfg.Seed%64)<<18
	hostAddr := func(host uint32) uint32 {
		return netBase | (host+1)<<8 | (host*37%253 + 1)
	}
	external := make([]uint32, 384)
	for i := range external {
		external[i] = 0xc0a80000 + uint32(i)*7919 // deterministic remote hosts
	}
	extZipf := xrand.NewZipf(rng.Fork(4), len(external), 0.9)
	extProb := 0.55 // campus border traffic share
	if cfg.Class == Wireless {
		extProb = 0.35
	}

	pkts := make([]Packet, 0, cfg.Packets)
	for len(pkts) < cfg.Packets {
		// New flow.
		start := r.Float64() * cfg.DurationS
		srcHost := uint32(r.Intn(cfg.Nodes))
		src := hostAddr(srcHost)
		var dst uint32
		if r.Float64() < extProb {
			dst = external[extZipf.Next()]
		} else {
			d := uint32(dstZipf.Next())
			if d == srcHost {
				d = (d + 1) % uint32(cfg.Nodes)
			}
			dst = hostAddr(d)
		}
		isHTTP := r.Float64() < cfg.HTTPFraction
		proto := TCP
		dstPort := uint16(80)
		if !isHTTP {
			switch r.Intn(10) {
			case 0, 1, 2:
				proto, dstPort = UDP, 53
			case 3:
				proto, dstPort = ICMP, 0
			case 4, 5:
				dstPort = 21
			case 6:
				dstPort = 25
			default:
				dstPort = uint16(1024 + r.Intn(40000))
			}
		}
		srcPort := uint16(1024 + r.Intn(60000))

		nPkts := int(r.Pareto(1, 1.25) * cfg.MeanFlowPkts / 5)
		if nPkts < 1 {
			nPkts = 1
		}
		if nPkts > 500 {
			nPkts = 500
		}
		ts := start
		for j := 0; j < nPkts && len(pkts) < cfg.Packets; j++ {
			p := Packet{
				TS: ts, Src: src, Dst: dst,
				SrcPort: srcPort, DstPort: dstPort, Proto: proto,
				Size: cfg.packetSize(r),
			}
			if j == 0 {
				p.Flags |= SYN
				if isHTTP {
					p.Payload = urlPool[urlZipf.Next()]
				}
			}
			if j == nPkts-1 {
				p.Flags |= FIN
			}
			pkts = append(pkts, p)
			// Spread a flow's packets over roughly a third of the trace
			// span: tens to hundreds of flows are concurrently active,
			// which is what fills session tables, conntrack caches and
			// scheduler queues to realistic depths.
			ts += r.Exp(cfg.DurationS / (cfg.MeanFlowPkts * 3))
		}
	}

	// Deterministic chronological order. The comparison is a total order
	// over full packet content, so the sorted trace is independent of the
	// sort algorithm; the concrete sort.Interface avoids both the
	// reflection-based swapper of sort.Slice and the by-value struct
	// copies a generic comparison func costs per probe — the two
	// overheads that dominated million-packet generation.
	sort.Sort(byTime(pkts))
	return &Trace{Name: cfg.Name, Network: cfg.Network, Class: cfg.Class, Packets: pkts}
}

// byTime orders packets chronologically, breaking timestamp ties on
// every remaining field so the order is total: two packets compare equal
// only when identical, making the sorted trace unique.
type byTime []Packet

func (s byTime) Len() int      { return len(s) }
func (s byTime) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

func (s byTime) Less(i, j int) bool {
	a, b := &s[i], &s[j]
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.Size != b.Size {
		return a.Size < b.Size
	}
	if a.Flags != b.Flags {
		return a.Flags < b.Flags
	}
	return a.Payload < b.Payload
}

// packetSize draws one packet size from the class-specific mix: backbone
// traffic is bimodal around ACK-size and MTU, wireless skews smaller.
func (cfg GenConfig) packetSize(r *xrand.RNG) uint16 {
	u := r.Float64()
	switch cfg.Class {
	case Campus:
		switch {
		case u < 0.40:
			return uint16(40 + r.Intn(21)) // ACKs and control
		case u < 0.50:
			return uint16(576) // legacy default MTU
		default:
			return uint16(cfg.MTU - r.Intn(40))
		}
	default: // Wireless
		switch {
		case u < 0.55:
			return uint16(40 + r.Intn(61))
		case u < 0.80:
			return uint16(256 + r.Intn(256))
		default:
			return uint16(cfg.MTU - r.Intn(100))
		}
	}
}

// BuiltinConfigs returns the ten trace configurations mirroring the
// paper's trace set: four NLANR-style campus collection points over three
// networks, six Dartmouth-style wireless building traces over five
// networks — 10 traces, 8 networks.
func BuiltinConfigs() []GenConfig {
	return []GenConfig{
		{Name: "FLA", Network: "FLA", Class: Campus, Seed: 101,
			Nodes: 420, Packets: 20000, DurationS: 60, MTU: 1500,
			MeanFlowPkts: 18, ZipfS: 1.0, HTTPFraction: 0.45},
		{Name: "SDC", Network: "SDC", Class: Campus, Seed: 102,
			Nodes: 340, Packets: 20000, DurationS: 90, MTU: 1500,
			MeanFlowPkts: 14, ZipfS: 0.9, HTTPFraction: 0.40},
		{Name: "BWY-I", Network: "BWY", Class: Campus, Seed: 103,
			Nodes: 510, Packets: 20000, DurationS: 45, MTU: 1500,
			MeanFlowPkts: 22, ZipfS: 1.1, HTTPFraction: 0.50},
		{Name: "BWY-II", Network: "BWY", Class: Campus, Seed: 104,
			Nodes: 480, Packets: 20000, DurationS: 75, MTU: 1500,
			MeanFlowPkts: 16, ZipfS: 1.05, HTTPFraction: 0.48},
		{Name: "Berry", Network: "Berry", Class: Wireless, Seed: 201,
			Nodes: 92, Packets: 20000, DurationS: 300, MTU: 1400,
			MeanFlowPkts: 9, ZipfS: 1.3, HTTPFraction: 0.60},
		{Name: "Brown", Network: "Brown", Class: Wireless, Seed: 202,
			Nodes: 58, Packets: 20000, DurationS: 420, MTU: 1400,
			MeanFlowPkts: 7, ZipfS: 1.25, HTTPFraction: 0.55},
		{Name: "Collis", Network: "Collis", Class: Wireless, Seed: 203,
			Nodes: 76, Packets: 20000, DurationS: 360, MTU: 1400,
			MeanFlowPkts: 8, ZipfS: 1.2, HTTPFraction: 0.62},
		{Name: "Sudikoff", Network: "Sudikoff", Class: Wireless, Seed: 204,
			Nodes: 44, Packets: 20000, DurationS: 600, MTU: 1400,
			MeanFlowPkts: 11, ZipfS: 1.15, HTTPFraction: 0.50},
		{Name: "Whittemore-I", Network: "Whittemore", Class: Wireless, Seed: 205,
			Nodes: 56, Packets: 20000, DurationS: 480, MTU: 1400,
			MeanFlowPkts: 8, ZipfS: 1.3, HTTPFraction: 0.58},
		{Name: "Whittemore-II", Network: "Whittemore", Class: Wireless, Seed: 206,
			Nodes: 52, Packets: 20000, DurationS: 540, MTU: 1400,
			MeanFlowPkts: 9, ZipfS: 1.28, HTTPFraction: 0.56},
	}
}

// BuiltinNames lists the built-in trace names in canonical order.
func BuiltinNames() []string {
	cfgs := BuiltinConfigs()
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	return names
}

// LongPackets is the trace length of the "-1M" long presets.
const LongPackets = 1 << 20

// LongConfig returns the million-packet preset of the named built-in
// trace: the same network, seed and traffic mix with the packet count
// raised to LongPackets and the time span scaled proportionally, so
// throughput and concurrent-flow depth stay at the network's recorded
// levels instead of compressing a long trace into the original window.
// The preset is named "<name>-1M" and Builtin resolves it directly —
// this is the trace scale the sampled screening mode is built for.
func LongConfig(name string) (GenConfig, error) {
	for _, cfg := range BuiltinConfigs() {
		if cfg.Name == name {
			cfg.DurationS *= float64(LongPackets) / float64(cfg.Packets)
			cfg.Packets = LongPackets
			cfg.Name += "-1M"
			return cfg, nil
		}
	}
	return GenConfig{}, fmt.Errorf("trace: unknown built-in trace %q", name)
}

// Builtin generates the named built-in trace, or its "<name>-1M" long
// preset. If packets > 0 it overrides the configured trace length (tests
// and examples use short traces, the benchmark harness longer ones).
func Builtin(name string, packets int) (*Trace, error) {
	if base, ok := strings.CutSuffix(name, "-1M"); ok {
		cfg, err := LongConfig(base)
		if err != nil {
			return nil, err
		}
		if packets > 0 {
			cfg.Packets = packets
		}
		return Generate(cfg), nil
	}
	for _, cfg := range BuiltinConfigs() {
		if cfg.Name == name {
			if packets > 0 {
				cfg.Packets = packets
			}
			return Generate(cfg), nil
		}
	}
	return nil, fmt.Errorf("trace: unknown built-in trace %q", name)
}

// Networks returns the distinct network names of the built-in set, in
// first-appearance order.
func Networks() []string {
	var out []string
	seen := make(map[string]bool)
	for _, cfg := range BuiltinConfigs() {
		if !seen[cfg.Network] {
			seen[cfg.Network] = true
			out = append(out, cfg.Network)
		}
	}
	return out
}
