package trace_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func berry(t *testing.T, packets int) *trace.Trace {
	t.Helper()
	tr, err := trace.Builtin("Berry", packets)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuiltinSetMatchesPaper(t *testing.T) {
	cfgs := trace.BuiltinConfigs()
	if len(cfgs) != 10 {
		t.Fatalf("paper uses 10 traces, got %d", len(cfgs))
	}
	if nets := trace.Networks(); len(nets) != 8 {
		t.Fatalf("paper uses 8 networks, got %d: %v", len(nets), nets)
	}
	// The two traces the paper's Figure 4 discusses by name must exist.
	for _, name := range []string{"Berry", "BWY-I"} {
		if _, err := trace.Builtin(name, 100); err != nil {
			t.Errorf("missing paper trace %q: %v", name, err)
		}
	}
	seen := make(map[string]bool)
	for _, c := range cfgs {
		if seen[c.Name] {
			t.Errorf("duplicate trace name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestBuiltinUnknown(t *testing.T) {
	if _, err := trace.Builtin("Atlantis", 10); err == nil {
		t.Fatal("unknown trace name accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := berry(t, 3000)
	b := berry(t, 3000)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a.Packets[i], b.Packets[i])
		}
	}
}

func TestGenerateLengthAndOrder(t *testing.T) {
	tr := berry(t, 5000)
	if len(tr.Packets) != 5000 {
		t.Fatalf("got %d packets, want 5000", len(tr.Packets))
	}
	if !sort.SliceIsSorted(tr.Packets, func(i, j int) bool {
		return tr.Packets[i].TS < tr.Packets[j].TS
	}) {
		t.Fatal("trace not in chronological order")
	}
}

func TestFlowLifecycleFlags(t *testing.T) {
	tr := berry(t, 5000)
	synSeen := make(map[trace.FlowKey]bool)
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Flags&trace.SYN != 0 {
			synSeen[p.Key()] = true
		}
	}
	if len(synSeen) < 100 {
		t.Fatalf("only %d flows in 5000 packets; generator degenerate", len(synSeen))
	}
	// Every HTTP payload must ride on a SYN packet.
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Payload != "" && p.Flags&trace.SYN == 0 {
			t.Fatal("payload on a non-SYN packet")
		}
		if p.Payload != "" && !strings.HasPrefix(p.Payload, "/") {
			t.Fatalf("payload %q is not a request path", p.Payload)
		}
	}
}

func TestExtractMatchesConfig(t *testing.T) {
	for _, cfg := range trace.BuiltinConfigs() {
		cfg := cfg
		cfg.Packets = 8000
		tr := trace.Generate(cfg)
		p := trace.Extract(tr)
		if p.PacketCount != 8000 {
			t.Errorf("%s: PacketCount = %d", cfg.Name, p.PacketCount)
		}
		// Node count is bounded by internal hosts + the external pool.
		if p.Nodes < cfg.Nodes/4 || p.Nodes > cfg.Nodes+400 {
			t.Errorf("%s: Nodes = %d, config %d", cfg.Name, p.Nodes, cfg.Nodes)
		}
		if p.MaxPacketSize > cfg.MTU {
			t.Errorf("%s: MaxPacketSize %d exceeds MTU %d", cfg.Name, p.MaxPacketSize, cfg.MTU)
		}
		if p.MeanPacketSize <= 0 || p.ThroughputBps <= 0 {
			t.Errorf("%s: degenerate params %+v", cfg.Name, p)
		}
		if p.Flows <= 1 {
			t.Errorf("%s: only %d flows", cfg.Name, p.Flows)
		}
	}
}

func TestClassesDiffer(t *testing.T) {
	campus, _ := trace.Builtin("BWY-I", 8000)
	wireless, _ := trace.Builtin("Berry", 8000)
	pc, pw := trace.Extract(campus), trace.Extract(wireless)
	if pc.Nodes <= pw.Nodes {
		t.Errorf("campus nodes %d <= wireless nodes %d", pc.Nodes, pw.Nodes)
	}
	if pc.MeanPacketSize <= pw.MeanPacketSize {
		t.Errorf("campus mean packet %v <= wireless %v; size mixes should differ",
			pc.MeanPacketSize, pw.MeanPacketSize)
	}
	if pc.ThroughputBps <= pw.ThroughputBps {
		t.Errorf("campus throughput %v <= wireless %v", pc.ThroughputBps, pw.ThroughputBps)
	}
}

func TestExtractEmpty(t *testing.T) {
	p := trace.Extract(&trace.Trace{})
	if p.PacketCount != 0 || p.Nodes != 0 {
		t.Fatalf("empty trace params = %+v", p)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := berry(t, 1200)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Network != tr.Network || got.Class != tr.Class {
		t.Fatalf("header mismatch: %q/%q/%v", got.Name, got.Network, got.Class)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("packet count %d != %d", len(got.Packets), len(tr.Packets))
	}
	for i := range got.Packets {
		a, b := got.Packets[i], tr.Packets[i]
		// Timestamps are serialized at microsecond precision.
		if ad := a.TS - b.TS; ad > 1e-6 || ad < -1e-6 {
			t.Fatalf("packet %d TS %v != %v", i, a.TS, b.TS)
		}
		a.TS, b.TS = 0, 0
		if a != b {
			t.Fatalf("packet %d: %+v != %+v", i, a, b)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                              // no header
		"1 2 3\n",                       // data without header
		"# ddtr-trace v1\nnot a packet", // malformed record
		"# ddtr-trace v1\n0.1 1.2.3.4 5.6.7.8 1 2 tcp 100 0\n",         // missing field
		"# ddtr-trace v1\n0.1 1.2.3 5.6.7.8 1 2 tcp 100 0 \"\"\n",      // bad address
		"# ddtr-trace v1\n0.1 1.2.3.4 5.6.7.8 1 2 xxx 100 0 \"\"\n",    // bad proto
		"# ddtr-trace v1\n0.1 1.2.3.4 5.6.7.8 1 2 tcp 999999 0 \"\"\n", // size overflow
	}
	for i, c := range cases {
		if _, err := trace.Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		got, err := trace.ParseIPv4(trace.FormatIPv4(a))
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ParseIPv4("256.1.1.1"); err == nil {
		t.Error("octet overflow accepted")
	}
}

// quotedPayload checks that arbitrary payload strings survive the text
// round trip (quoting is load-bearing for URL paths with spaces etc.).
type quotedPayload string

func (quotedPayload) Generate(r *rand.Rand, _ int) reflect.Value {
	chars := []rune("abc /?&=%\"\\\n\tλ")
	n := r.Intn(20)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(chars[r.Intn(len(chars))])
	}
	return reflect.ValueOf(quotedPayload(b.String()))
}

func TestQuickPayloadRoundTrip(t *testing.T) {
	f := func(s quotedPayload) bool {
		tr := &trace.Trace{Name: "x", Network: "y", Packets: []trace.Packet{
			{TS: 1, Src: 1, Dst: 2, Proto: trace.TCP, Size: 40, Payload: string(s)},
		}}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			return false
		}
		got, err := trace.Read(&buf)
		if err != nil || len(got.Packets) != 1 {
			return false
		}
		return got.Packets[0].Payload == string(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
