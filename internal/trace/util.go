package trace

import (
	"cmp"
	"slices"
	"sort"
)

// TimeSlice returns a new trace holding the packets with TS in [from, to),
// preserving order. The paper's tooling sliced long captures into
// per-experiment windows; this is that knife.
func (t *Trace) TimeSlice(from, to float64) *Trace {
	out := &Trace{Name: t.Name, Network: t.Network, Class: t.Class}
	for i := range t.Packets {
		if ts := t.Packets[i].TS; ts >= from && ts < to {
			out.Packets = append(out.Packets, t.Packets[i])
		}
	}
	return out
}

// FilterProto returns a new trace holding only packets of the given
// transport protocol.
func (t *Trace) FilterProto(p Proto) *Trace {
	out := &Trace{Name: t.Name, Network: t.Network, Class: t.Class}
	for i := range t.Packets {
		if t.Packets[i].Proto == p {
			out.Packets = append(out.Packets, t.Packets[i])
		}
	}
	return out
}

// FlowLengths returns the packet count of every flow (5-tuple) in the
// trace, largest first — the heavy-tailed distribution the generators are
// built to produce and the session/queue dynamics depend on.
func FlowLengths(t *Trace) []int {
	counts := make(map[FlowKey]int)
	for i := range t.Packets {
		counts[t.Packets[i].Key()]++
	}
	out := make([]int, 0, len(counts))
	for _, n := range counts {
		out = append(out, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Concurrency returns the maximum number of flows simultaneously open
// (between their first and last packet) at any packet arrival — the load
// figure that sizes session tables and scheduler state.
func Concurrency(t *Trace) int {
	type span struct{ first, last float64 }
	spans := make(map[FlowKey]*span)
	for i := range t.Packets {
		pk := &t.Packets[i]
		s, ok := spans[pk.Key()]
		if !ok {
			spans[pk.Key()] = &span{first: pk.TS, last: pk.TS}
			continue
		}
		if pk.TS > s.last {
			s.last = pk.TS
		}
	}
	// Sweep: +1 at first packet, -1 after last.
	type event struct {
		ts    float64
		delta int
	}
	events := make([]event, 0, 2*len(spans))
	for _, s := range spans {
		events = append(events, event{s.first, +1}, event{s.last, -1})
	}
	slices.SortFunc(events, func(a, b event) int {
		if c := cmp.Compare(a.ts, b.ts); c != 0 {
			return c
		}
		// Opens before closes at the same instant: a flow of one packet
		// still counts as concurrent with itself.
		return cmp.Compare(b.delta, a.delta)
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
