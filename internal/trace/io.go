package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is a line-oriented text file, one packet per line,
// with a small header — the same spirit as the NLANR/Dartmouth text dumps
// the paper's Perl parser consumed:
//
//	# ddtr-trace v1
//	# name: BWY-I
//	# network: BWY
//	# class: campus
//	<ts> <src> <dst> <sport> <dport> <proto> <size> <flags> <payload>
//
// Addresses are dotted quads, payload is a Go-quoted string ("" when
// absent).

const formatHeader = "# ddtr-trace v1"

// Write serializes t to w in the text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "# name: %s\n", t.Name)
	fmt.Fprintf(bw, "# network: %s\n", t.Network)
	fmt.Fprintf(bw, "# class: %s\n", t.Class)
	for i := range t.Packets {
		p := &t.Packets[i]
		fmt.Fprintf(bw, "%.6f %s %s %d %d %s %d %d %s\n",
			p.TS, FormatIPv4(p.Src), FormatIPv4(p.Dst),
			p.SrcPort, p.DstPort, p.Proto, p.Size, p.Flags,
			strconv.Quote(p.Payload))
	}
	return bw.Flush()
}

// Read parses a trace in the text format.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	t := &Trace{}
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case line == formatHeader:
				sawHeader = true
			case strings.HasPrefix(line, "# name: "):
				t.Name = strings.TrimPrefix(line, "# name: ")
			case strings.HasPrefix(line, "# network: "):
				t.Network = strings.TrimPrefix(line, "# network: ")
			case strings.HasPrefix(line, "# class: "):
				if strings.TrimPrefix(line, "# class: ") == "wireless" {
					t.Class = Wireless
				}
			}
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("trace: line %d: data before %q header", lineNo, formatHeader)
		}
		p, err := parsePacket(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		t.Packets = append(t.Packets, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: missing %q header", formatHeader)
	}
	return t, nil
}

func parsePacket(line string) (Packet, error) {
	var p Packet
	// Split only 8 times: the quoted payload may itself contain spaces.
	fields := strings.SplitN(line, " ", 9)
	if len(fields) != 9 {
		return p, fmt.Errorf("want 9 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return p, fmt.Errorf("timestamp: %w", err)
	}
	src, err := ParseIPv4(fields[1])
	if err != nil {
		return p, err
	}
	dst, err := ParseIPv4(fields[2])
	if err != nil {
		return p, err
	}
	sport, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return p, fmt.Errorf("src port: %w", err)
	}
	dport, err := strconv.ParseUint(fields[4], 10, 16)
	if err != nil {
		return p, fmt.Errorf("dst port: %w", err)
	}
	proto, err := parseProto(fields[5])
	if err != nil {
		return p, err
	}
	size, err := strconv.ParseUint(fields[6], 10, 16)
	if err != nil {
		return p, fmt.Errorf("size: %w", err)
	}
	flags, err := strconv.ParseUint(fields[7], 10, 8)
	if err != nil {
		return p, fmt.Errorf("flags: %w", err)
	}
	payload, err := strconv.Unquote(fields[8])
	if err != nil {
		return p, fmt.Errorf("payload: %w", err)
	}
	p = Packet{
		TS: ts, Src: src, Dst: dst,
		SrcPort: uint16(sport), DstPort: uint16(dport),
		Proto: proto, Size: uint16(size), Flags: Flags(flags),
		Payload: payload,
	}
	return p, nil
}

func parseProto(s string) (Proto, error) {
	switch s {
	case "tcp":
		return TCP, nil
	case "udp":
		return UDP, nil
	case "icmp":
		return ICMP, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

// FormatIPv4 renders a dotted quad.
func FormatIPv4(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", a>>24, a>>16&0xff, a>>8&0xff, a&0xff)
}

// ParseIPv4 parses a dotted quad.
func ParseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var a uint32
	for _, part := range parts {
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad IPv4 address %q: %w", s, err)
		}
		a = a<<8 | uint32(v)
	}
	return a, nil
}
