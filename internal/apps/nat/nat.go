// Package nat is an extension case study beyond the paper's four
// benchmarks: a NAPT (network address and port translation) gateway. The
// paper claims its methodology applies "to any given network application,
// with any network configuration" — this package demonstrates that claim:
// it plugs into the identical exploration flow with zero changes to the
// methodology code.
//
// Candidate containers: the translation table (probed on every packet,
// inserted on new outbound flows, deleted on FINs and evictions), the
// free-port pool (popped on flow creation, pushed on teardown) and the
// per-interface counters.
package nat

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Container role names.
const (
	RoleTable = "nat-table"
	RolePorts = "port-pool"
	RoleStats = "if-stats"
)

// KnobTable caps the translation table — the gateway's provisioned flow
// capacity, swept like any other application parameter.
const KnobTable = "maxnat"

// natRec is one address/port translation.
type natRec struct {
	InsideAddr uint32
	InsidePort uint16
	OutPort    uint16
	RemoteAddr uint32
	RemotePort uint16
	Proto      trace.Proto
}

// portRec is one free external port.
type portRec struct {
	Port uint16
}

// statRec is one interface counter pair.
type statRec struct {
	Packets uint64
	Bytes   uint64
}

// App is the NAPT gateway.
type App struct{}

var _ apps.App = App{}

// Name returns "NAT".
func (App) Name() string { return "NAT" }

// Roles lists the candidate containers.
func (App) Roles() []apps.Role {
	return []apps.Role{
		{Name: RoleTable, RecordBytes: 32},
		{Name: RolePorts, RecordBytes: 8},
		{Name: RoleStats, RecordBytes: 16},
	}
}

// DefaultKnobs provisions a mid-size gateway.
func (App) DefaultKnobs() apps.Knobs { return apps.Knobs{KnobTable: 256} }

// KnobSweep explores two provisioning levels.
func (App) KnobSweep() map[string][]int {
	return map[string][]int{KnobTable: {192, 384}}
}

// TraceNames: five networks, a border-gateway mix.
func (App) TraceNames() []string {
	return []string{"SDC", "BWY-II", "Berry", "Sudikoff", "Whittemore-I"}
}

// internalNet matches the generator's 10.0.0.0/8 campus space.
func isInternal(addr uint32) bool { return addr>>24 == 10 }

// Run executes the gateway over the trace.
func (a App) Run(tr *trace.Trace, p *platform.Platform, assign apps.Assignment, knobs apps.Knobs, probes *profiler.Set) (apps.Summary, error) {
	sum := apps.NewSummary()
	if err := apps.ValidateAssignment(a, assign); err != nil {
		return sum, err
	}
	maxNAT := knobs[KnobTable]
	if maxNAT <= 0 {
		return sum, fmt.Errorf("nat: knob %q must be positive, got %d", KnobTable, maxNAT)
	}
	tableEnv := apps.EnvFor(p, probes, RoleTable)
	portEnv := apps.EnvFor(p, probes, RolePorts)
	statEnv := apps.EnvFor(p, probes, RoleStats)
	table := ddt.New[natRec](apps.KindFor(assign, RoleTable), tableEnv, 32)
	ports := ddt.New[portRec](apps.KindFor(assign, RolePorts), portEnv, 8)
	stats := ddt.New[statRec](apps.KindFor(assign, RoleStats), statEnv, 16)

	// Preload the free-port pool and the interface counters.
	nextFresh := uint16(20000)
	for i := 0; i < 64; i++ {
		ports.Append(portRec{Port: nextFresh})
		nextFresh++
	}
	for i := 0; i < 4; i++ {
		stats.Append(statRec{})
	}

	allocPort := func() uint16 {
		if n := ports.Len(); n > 0 {
			return ports.RemoveAt(n - 1).Port // LIFO pop
		}
		nextFresh++
		return nextFresh
	}

	for i := range tr.Packets {
		pk := &tr.Packets[i]
		sum.Packets++
		p.Mem.Op(70) // header parse and checksum, DDT-independent

		if !isInternal(pk.Dst) {
			// Outbound across the border: translate (src, sport).
			idx, _, ok := ddt.Find(table, tableEnv, 4, func(r natRec) bool {
				return r.InsideAddr == pk.Src && r.InsidePort == pk.SrcPort &&
					r.RemoteAddr == pk.Dst && r.RemotePort == pk.DstPort && r.Proto == pk.Proto
			})
			switch {
			case ok && pk.Flags&trace.FIN != 0:
				rec := table.RemoveAt(idx)
				ports.Append(portRec{Port: rec.OutPort})
				sum.Count("closed", 1)
			case ok:
				sum.Count("translated-out", 1)
			default:
				table.Append(natRec{
					InsideAddr: pk.Src, InsidePort: pk.SrcPort,
					OutPort:    allocPort(),
					RemoteAddr: pk.Dst, RemotePort: pk.DstPort, Proto: pk.Proto,
				})
				sum.Count("new-binding", 1)
				if table.Len() > maxNAT {
					old := table.RemoveAt(0) // evict the oldest binding
					ports.Append(portRec{Port: old.OutPort})
					sum.Count("evicted", 1)
				}
			}
			// Each outbound data packet clocks a reply from the remote
			// peer; the gateway looks its binding up on the way back in.
			if pk.Flags&trace.FIN == 0 {
				_, _, hit := ddt.Find(table, tableEnv, 4, func(r natRec) bool {
					return r.RemoteAddr == pk.Dst && r.RemotePort == pk.DstPort &&
						r.InsideAddr == pk.Src && r.InsidePort == pk.SrcPort
				})
				if hit {
					sum.Count("translated-in", 1)
				} else {
					sum.Count("dropped-in", 1)
				}
			}
		} else {
			// Internal destination: routed locally, no translation.
			p.Mem.Op(4)
			sum.Count("local", 1)
		}
		// Interface counters.
		ifc := int(pk.Src>>8) & 3
		st := stats.Get(ifc)
		st.Packets++
		st.Bytes += uint64(pk.Size)
		stats.Set(ifc, st)
	}
	sum.Count("table-final", table.Len())
	return sum, nil
}
