package nat_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/apptest"
	"repro/internal/apps/nat"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/platform"
)

func TestConformance(t *testing.T) {
	apptest.CheckConformance(t, nat.App{})
}

func TestDominantStructure(t *testing.T) {
	// The translation table is probed up to twice per border packet; it
	// must rank first.
	apptest.CheckDominant(t, nat.App{}, nat.RoleTable)
}

func TestPacketAccounting(t *testing.T) {
	a := nat.App{}
	tr := apptest.LoadTrace(t, a)
	sum, _ := apptest.Run(t, a, tr, apps.Original(a))
	border := sum.Events["translated-out"] + sum.Events["new-binding"] + sum.Events["closed"]
	if got := border + sum.Events["local"]; got != len(tr.Packets) {
		t.Fatalf("classified %d of %d packets: %+v", got, len(tr.Packets), sum.Events)
	}
	for _, ev := range []string{"new-binding", "translated-out", "translated-in", "local", "closed"} {
		if sum.Events[ev] == 0 {
			t.Errorf("no %q events; workload degenerate", ev)
		}
	}
	// Replies for live bindings must overwhelmingly find their binding.
	if sum.Events["dropped-in"] > sum.Events["translated-in"] {
		t.Errorf("more inbound drops (%d) than hits (%d); binding bookkeeping broken",
			sum.Events["dropped-in"], sum.Events["translated-in"])
	}
}

func TestCapEvictsAndRecyclesPorts(t *testing.T) {
	a := nat.App{}
	tr := apptest.LoadTrace(t, a)
	p := platform.Default()
	sum, err := a.Run(tr, p, apps.Original(a), apps.Knobs{nat.KnobTable: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events["evicted"] == 0 {
		t.Fatal("tiny table cap never evicted")
	}
	if sum.Events["table-final"] > 6+1 {
		t.Fatalf("final table %d exceeds cap", sum.Events["table-final"])
	}
}

// TestPluggedIntoMethodology is the point of the extension: the full
// 3-step flow runs on an application the paper never saw, unchanged.
func TestPluggedIntoMethodology(t *testing.T) {
	m := core.Methodology{App: nat.App{}, Opts: explore.Options{TracePackets: 400}}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 5 traces x 2 knob values = 10 configurations.
	if rep.Exhaustive != 1000 {
		t.Errorf("exhaustive = %d, want 1000", rep.Exhaustive)
	}
	if rep.ReductionFraction() <= 0 {
		t.Error("no simulation reduction")
	}
	if rep.ParetoOptimal == 0 {
		t.Error("empty Pareto set")
	}
	if rep.EnergySaving < 0 || rep.TimeSaving < 0 {
		t.Errorf("refinement lost to original: E %.2f t %.2f", rep.EnergySaving, rep.TimeSaving)
	}
}
