// Package apptest provides the shared conformance checks every network
// application must pass: functional equivalence across all ten DDT
// assignments (the refinement "does not alter the actual functionality of
// the application"), determinism, and well-formed role/knob/trace
// declarations. Each application's test file runs these and adds its own
// behavioural checks.
package apptest

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// TracePackets is the trace length used by the conformance checks — small
// enough to keep `go test ./...` fast even for the list-heavy assignments.
const TracePackets = 600

// LoadTrace returns the app's first declared trace at test scale.
func LoadTrace(t *testing.T, a apps.App) *trace.Trace {
	t.Helper()
	names := a.TraceNames()
	if len(names) == 0 {
		t.Fatalf("%s declares no traces", a.Name())
	}
	tr, err := trace.Builtin(names[0], TracePackets)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return tr
}

// Run executes the app once on a fresh platform and returns the summary
// and metrics.
func Run(t *testing.T, a apps.App, tr *trace.Trace, assign apps.Assignment) (apps.Summary, platform.Platform) {
	t.Helper()
	p := platform.Default()
	sum, err := a.Run(tr, p, assign, a.DefaultKnobs(), nil)
	if err != nil {
		t.Fatalf("%s: Run(%v): %v", a.Name(), assign, err)
	}
	return sum, *p
}

// CheckConformance runs the full generic suite.
func CheckConformance(t *testing.T, a apps.App) {
	t.Helper()
	checkDeclarations(t, a)
	tr := LoadTrace(t, a)

	origSum, origPlat := Run(t, a, tr, apps.Original(a))
	origVec := origPlat.Metrics()
	if origSum.Packets != len(tr.Packets) {
		t.Errorf("%s: processed %d of %d packets", a.Name(), origSum.Packets, len(tr.Packets))
	}
	if origVec.Accesses == 0 || origVec.Energy <= 0 || origVec.Time <= 0 || origVec.Footprint <= 0 {
		t.Errorf("%s: degenerate metrics %v", a.Name(), origVec)
	}

	// Determinism: identical reruns.
	sum2, plat2 := Run(t, a, tr, apps.Original(a))
	if !origSum.Equal(sum2) {
		t.Errorf("%s: summary differs across identical runs", a.Name())
	}
	if plat2.Metrics() != origVec {
		t.Errorf("%s: metrics differ across identical runs: %v vs %v",
			a.Name(), plat2.Metrics(), origVec)
	}

	// Functional equivalence: every DDT kind on every role preserves the
	// behavioural summary while (in general) changing the cost vector.
	changedCost := false
	for _, role := range a.Roles() {
		for _, k := range ddt.AllKinds() {
			assign := apps.Original(a)
			assign[role.Name] = k
			sum, plat := Run(t, a, tr, assign)
			if !sum.Equal(origSum) {
				t.Fatalf("%s: assignment %v changed behaviour: %+v vs %+v",
					a.Name(), assign, sum.Events, origSum.Events)
			}
			if plat.Metrics() != origVec {
				changedCost = true
			}
		}
	}
	if !changedCost {
		t.Errorf("%s: no DDT assignment changed any cost metric; exploration would be vacuous", a.Name())
	}

	checkValidation(t, a, tr)
	checkProfiling(t, a, tr)
}

func checkDeclarations(t *testing.T, a apps.App) {
	t.Helper()
	roles := a.Roles()
	if len(roles) < 2 {
		t.Fatalf("%s: fewer than 2 candidate containers", a.Name())
	}
	seen := make(map[string]bool)
	for _, r := range roles {
		if seen[r.Name] {
			t.Errorf("%s: duplicate role %q", a.Name(), r.Name)
		}
		seen[r.Name] = true
		if r.RecordBytes == 0 {
			t.Errorf("%s: role %q has zero record size", a.Name(), r.Name)
		}
	}
	for knob := range a.KnobSweep() {
		if _, ok := a.DefaultKnobs()[knob]; !ok {
			t.Errorf("%s: sweep knob %q missing from defaults", a.Name(), knob)
		}
	}
	for _, name := range a.TraceNames() {
		if _, err := trace.Builtin(name, 10); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func checkValidation(t *testing.T, a apps.App, tr *trace.Trace) {
	t.Helper()
	p := platform.Default()
	if _, err := a.Run(tr, p, apps.Assignment{"no-such-role": ddt.AR}, a.DefaultKnobs(), nil); err == nil {
		t.Errorf("%s: unknown role accepted", a.Name())
	}
	if _, err := a.Run(tr, platform.Default(), apps.Original(a), apps.Knobs{}, nil); err == nil {
		t.Errorf("%s: empty knobs accepted", a.Name())
	}
}

func checkProfiling(t *testing.T, a apps.App, tr *trace.Trace) {
	t.Helper()
	probes := profiler.NewSet()
	p := platform.Default()
	if _, err := a.Run(tr, p, apps.Original(a), a.DefaultKnobs(), probes); err != nil {
		t.Fatalf("%s: profiled run: %v", a.Name(), err)
	}
	ranked := probes.Ranked()
	if len(ranked) != len(a.Roles()) {
		t.Fatalf("%s: %d probes for %d roles", a.Name(), len(ranked), len(a.Roles()))
	}
	var attributed uint64
	for _, pr := range ranked {
		if pr.Accesses() == 0 {
			t.Errorf("%s: container %q never accessed; dead candidate", a.Name(), pr.Role)
		}
		attributed += pr.Accesses()
	}
	// Probes partition a subset of the platform's accesses: per-role
	// attribution can never exceed what the platform observed.
	if total := uint64(p.Metrics().Accesses); attributed > total {
		t.Errorf("%s: probes attribute %d accesses but the platform saw %d",
			a.Name(), attributed, total)
	}
	// Profiled run must not change the platform metrics (probes observe,
	// they don't perturb).
	p2 := platform.Default()
	if _, err := a.Run(tr, p2, apps.Original(a), a.DefaultKnobs(), nil); err != nil {
		t.Fatal(err)
	}
	if p.Metrics() != p2.Metrics() {
		t.Errorf("%s: profiling changed the metrics: %v vs %v", a.Name(), p.Metrics(), p2.Metrics())
	}
}

// CheckDominant verifies profiling ranks the expected containers on top
// (in any order between them).
func CheckDominant(t *testing.T, a apps.App, want ...string) {
	t.Helper()
	tr := LoadTrace(t, a)
	probes := profiler.NewSet()
	if _, err := a.Run(tr, platform.Default(), apps.Original(a), a.DefaultKnobs(), probes); err != nil {
		t.Fatal(err)
	}
	got := probes.Dominant(len(want))
	have := make(map[string]bool)
	for _, r := range got {
		have[r] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("%s: dominant set %v missing %q\nprofile:\n%s", a.Name(), got, w, probes)
		}
	}
}
