// Package urlsw reimplements the NetBench "URL" benchmark: URL-based
// context switching, the content-aware front end that inspects the request
// path of incoming HTTP flows and switches each flow to a back-end server
// pool.
//
// Candidate containers: the URL pattern table scanned per request, the
// active session table probed on every packet (insert on SYN, delete on
// FIN — the churn that makes this application dynamic), and a small server
// pool. The paper notes both dominant DDTs of the original implementation
// were single linked lists, and reports 20% execution-time and 80% energy
// reduction for the refined ones (§4).
package urlsw

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Container role names.
const (
	RolePatterns = "patterns"
	RoleSessions = "sessions"
	RoleServers  = "servers"
)

// KnobSessions caps the session table (oldest sessions are evicted
// beyond it, as the NetBench implementation bounds its tables).
const KnobSessions = "maxsessions"

// patRec is one switching rule: requests whose path starts with Prefix go
// to server pool Server.
type patRec struct {
	Prefix string
	Server int32
}

// sessRec is one active switched flow.
type sessRec struct {
	Src    uint32
	Port   uint16
	Server int32
	Bytes  uint32
}

// srvRec is one back-end pool member.
type srvRec struct {
	Addr  uint32
	Conns uint32
}

// patternTable is the switching policy: longest prefixes first so the
// first match is the most specific, default pool last.
var patternTable = []patRec{
	{"/images/banner", 1},
	{"/images", 1},
	{"/static/style", 1},
	{"/static", 1},
	{"/cgi-bin/search", 2},
	{"/cgi-bin/login", 3},
	{"/cgi-bin", 2},
	{"/video", 4},
	{"/audio", 4},
	{"/download", 4},
	{"/mail/compose", 5},
	{"/mail", 5},
	{"/catalog/item", 6},
	{"/catalog", 6},
	{"/news", 7},
	{"/weather", 7},
	{"/sports", 7},
	{"/docs", 7},
	{"/feed", 7},
	{"/ads", 2},
	{"/index", 0},
	{"/", 0},
}

// App is the URL benchmark.
type App struct{}

var _ apps.App = App{}

// Name returns "URL".
func (App) Name() string { return "URL" }

// Roles lists the candidate containers.
func (App) Roles() []apps.Role {
	return []apps.Role{
		{Name: RolePatterns, RecordBytes: 24},
		{Name: RoleSessions, RecordBytes: 24},
		{Name: RoleServers, RecordBytes: 16},
	}
}

// DefaultKnobs bounds the session table. A content switch in front of a
// server farm tracks hundreds of concurrent flows; at this size the table
// outgrows the embedded L1 and its DDT choice carries real weight.
func (App) DefaultKnobs() apps.Knobs { return apps.Knobs{KnobSessions: 384} }

// KnobSweep is empty: the paper explores URL across networks only
// (500 simulations = 100 combinations x 5 networks).
func (App) KnobSweep() map[string][]int { return nil }

// TraceNames: the paper evaluates URL on 5 different networks; HTTP-heavy
// wireless buildings fit the workload.
func (App) TraceNames() []string {
	return []string{"Berry", "Brown", "Collis", "Sudikoff", "Whittemore-I"}
}

// Run executes URL switching over the trace.
func (a App) Run(tr *trace.Trace, p *platform.Platform, assign apps.Assignment, knobs apps.Knobs, probes *profiler.Set) (apps.Summary, error) {
	sum := apps.NewSummary()
	if err := apps.ValidateAssignment(a, assign); err != nil {
		return sum, err
	}
	maxSessions := knobs[KnobSessions]
	if maxSessions <= 0 {
		return sum, fmt.Errorf("urlsw: knob %q must be positive, got %d", KnobSessions, maxSessions)
	}
	patEnv := apps.EnvFor(p, probes, RolePatterns)
	sessEnv := apps.EnvFor(p, probes, RoleSessions)
	srvEnv := apps.EnvFor(p, probes, RoleServers)
	patterns := ddt.New[patRec](apps.KindFor(assign, RolePatterns), patEnv, 24)
	sessions := ddt.New[sessRec](apps.KindFor(assign, RoleSessions), sessEnv, 24)
	servers := ddt.New[srvRec](apps.KindFor(assign, RoleServers), srvEnv, 16)

	for _, pr := range patternTable {
		patterns.Append(pr)
	}
	for i := 0; i < 8; i++ {
		servers.Append(srvRec{Addr: 0x0aff0001 + uint32(i)})
	}

	for i := range tr.Packets {
		pk := &tr.Packets[i]
		sum.Packets++
		p.Mem.Op(60) // TCP reassembly / header parse, DDT-independent
		if pk.DstPort != 80 && pk.SrcPort != 80 {
			p.Mem.Op(2) // non-HTTP fast path
			sum.Count("non-http", 1)
			continue
		}
		// Session lookup on every HTTP packet.
		idx, sess, ok := ddt.Find(sessions, sessEnv, 3, func(s sessRec) bool {
			return s.Src == pk.Src && s.Port == pk.SrcPort
		})
		switch {
		case ok && pk.Flags&trace.FIN != 0:
			sessions.RemoveAt(idx)
			sum.Count("fin-closed", 1)
		case ok:
			sess.Bytes += uint32(pk.Size)
			sessions.Set(idx, sess)
			sum.Count("session-hit", 1)
		case pk.Flags&trace.SYN != 0:
			// New request: parse the request line, classify by URL
			// pattern scan, then switch.
			p.Mem.Op(150)
			target := classify(patterns, patEnv, pk.Payload)
			srv := servers.Get(int(target))
			srv.Conns++
			servers.Set(int(target), srv)
			sessions.Append(sessRec{Src: pk.Src, Port: pk.SrcPort, Server: target, Bytes: uint32(pk.Size)})
			sum.Count("request", 1)
			sum.Count(fmt.Sprintf("pool-%d", target), 1)
			if sessions.Len() > maxSessions {
				sessions.RemoveAt(0) // evict the oldest session
				sum.Count("evicted", 1)
			}
		default:
			p.Mem.Op(1) // mid-flow packet for an evicted session
			sum.Count("orphan", 1)
		}
	}
	return sum, nil
}

// classify scans the pattern table in order and returns the server pool of
// the first prefix match, charging the string comparison per visited
// pattern.
func classify(patterns ddt.List[patRec], env *ddt.Env, path string) int32 {
	var target int32
	patterns.Iterate(func(_ int, pr patRec) bool {
		// Prefix compare cost: one cycle per 4 compared bytes.
		n := len(pr.Prefix)
		if len(path) < n {
			n = len(path)
		}
		env.Op(uint64(n/4) + 1)
		if strings.HasPrefix(path, pr.Prefix) {
			target = pr.Server
			return false
		}
		return true
	})
	return target
}
