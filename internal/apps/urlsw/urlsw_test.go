package urlsw_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/apptest"
	"repro/internal/apps/urlsw"
	"repro/internal/platform"
)

func TestConformance(t *testing.T) {
	apptest.CheckConformance(t, urlsw.App{})
}

func TestDominantStructures(t *testing.T) {
	// The session table (probed per packet) and pattern table (scanned per
	// request) dominate the tiny server pool.
	apptest.CheckDominant(t, urlsw.App{}, urlsw.RoleSessions, urlsw.RolePatterns)
}

func TestPacketAccounting(t *testing.T) {
	a := urlsw.App{}
	tr := apptest.LoadTrace(t, a)
	sum, _ := apptest.Run(t, a, tr, apps.Original(a))
	handled := sum.Events["non-http"] + sum.Events["fin-closed"] + sum.Events["session-hit"] +
		sum.Events["request"] + sum.Events["orphan"]
	if handled != len(tr.Packets) {
		t.Fatalf("handled %d of %d packets: %+v", handled, len(tr.Packets), sum.Events)
	}
	if sum.Events["request"] == 0 {
		t.Fatal("no HTTP requests switched; workload degenerate")
	}
	if sum.Events["session-hit"] == 0 {
		t.Error("no mid-flow session hits; session table never exercised")
	}
}

func TestRequestsSpreadAcrossPools(t *testing.T) {
	a := urlsw.App{}
	tr := apptest.LoadTrace(t, a)
	sum, _ := apptest.Run(t, a, tr, apps.Original(a))
	pools := 0
	for ev := range sum.Events {
		if len(ev) > 5 && ev[:5] == "pool-" {
			pools++
		}
	}
	if pools < 3 {
		t.Errorf("requests hit only %d server pools; URL classification degenerate", pools)
	}
}

func TestSessionCapEnforced(t *testing.T) {
	a := urlsw.App{}
	tr := apptest.LoadTrace(t, a)
	p := platform.Default()
	sum, err := a.Run(tr, p, apps.Original(a), apps.Knobs{urlsw.KnobSessions: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events["evicted"] == 0 {
		t.Error("tiny session cap never triggered an eviction")
	}
	// A smaller cap must shrink the session-table footprint share: compare
	// against a large cap.
	p2 := platform.Default()
	if _, err := a.Run(tr, p2, apps.Original(a), apps.Knobs{urlsw.KnobSessions: 512}, nil); err != nil {
		t.Fatal(err)
	}
	if p.Metrics().Footprint >= p2.Metrics().Footprint {
		t.Errorf("cap=8 footprint %v >= cap=512 footprint %v",
			p.Metrics().Footprint, p2.Metrics().Footprint)
	}
}
