// Package ipchains reimplements the NetBench "IPchains" benchmark: a
// Linux-2.2-style packet-filter firewall with an ordered rule chain and a
// connection-tracking cache.
//
// Candidate containers: the rule chain (linear first-match scan on every
// packet that misses the connection cache — its length is the paper's
// "number of rules activated in a firewall application" network
// parameter), the conntrack table (probed on every packet, inserted on
// accepted SYNs, deleted on FINs) and the deny log.
package ipchains

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Container role names.
const (
	RoleRules     = "rules"
	RoleConntrack = "conntrack"
	RoleLog       = "deny-log"
)

// KnobRules is the active rule-chain length — the application-specific
// network parameter the paper sweeps for firewalls.
const KnobRules = "rules"

// Verdicts.
const (
	verdictDeny uint8 = iota
	verdictAccept
)

// ruleRec is one filter rule: match on source network, protocol and
// destination port range.
type ruleRec struct {
	SrcNet, SrcMask uint32
	PortLo, PortHi  uint16
	Proto           trace.Proto
	MatchAnyProto   bool
	Verdict         uint8
}

// connRec is one tracked connection.
type connRec struct {
	Key trace.FlowKey
}

// logRec is one deny-log record.
type logRec struct {
	Src, Dst uint32
	TS       float32
}

// App is the IPchains benchmark.
type App struct{}

var _ apps.App = App{}

// Name returns "IPchains".
func (App) Name() string { return "IPchains" }

// Roles lists the candidate containers.
func (App) Roles() []apps.Role {
	return []apps.Role{
		{Name: RoleRules, RecordBytes: 32},
		{Name: RoleConntrack, RecordBytes: 24},
		{Name: RoleLog, RecordBytes: 16},
	}
}

// DefaultKnobs uses a mid-size chain.
func (App) DefaultKnobs() apps.Knobs { return apps.Knobs{KnobRules: 64} }

// KnobSweep explores three chain lengths; with the seven networks this
// yields the paper's 21 IPchains configurations (2100 exhaustive
// simulations / 100 combinations).
func (App) KnobSweep() map[string][]int {
	return map[string][]int{KnobRules: {32, 64, 128}}
}

// TraceNames: seven networks, like Route.
func (App) TraceNames() []string {
	return []string{"FLA", "SDC", "BWY-I", "Berry", "Brown", "Collis", "Sudikoff"}
}

// maxConntrack bounds the connection cache; the oldest entry is evicted
// beyond it.
const maxConntrack = 384

// maxLog bounds the deny log ring.
const maxLog = 128

// Run executes the firewall over the trace.
func (a App) Run(tr *trace.Trace, p *platform.Platform, assign apps.Assignment, knobs apps.Knobs, probes *profiler.Set) (apps.Summary, error) {
	sum := apps.NewSummary()
	if err := apps.ValidateAssignment(a, assign); err != nil {
		return sum, err
	}
	nRules := knobs[KnobRules]
	if nRules < 2 {
		return sum, fmt.Errorf("ipchains: knob %q must be at least 2, got %d", KnobRules, nRules)
	}
	ruleEnv := apps.EnvFor(p, probes, RoleRules)
	connEnv := apps.EnvFor(p, probes, RoleConntrack)
	logEnv := apps.EnvFor(p, probes, RoleLog)
	rules := ddt.New[ruleRec](apps.KindFor(assign, RoleRules), ruleEnv, 32)
	conns := ddt.New[connRec](apps.KindFor(assign, RoleConntrack), connEnv, 24)
	denyLog := ddt.New[logRec](apps.KindFor(assign, RoleLog), logEnv, 16)

	buildChain(rules, nRules)

	for i := range tr.Packets {
		pk := &tr.Packets[i]
		sum.Packets++
		p.Mem.Op(80) // header extraction and sanity checks, DDT-independent
		key := pk.Key()

		// Established connections bypass the chain.
		idx, _, tracked := ddt.Find(conns, connEnv, 4, func(c connRec) bool {
			return c.Key == key
		})
		if tracked {
			if pk.Flags&trace.FIN != 0 {
				conns.RemoveAt(idx)
			}
			p.Mem.Op(2)
			sum.Count("tracked", 1)
			continue
		}

		verdict := matchChain(rules, ruleEnv, pk)
		if verdict == verdictAccept {
			sum.Count("accept", 1)
			if pk.Proto == trace.TCP && pk.Flags&trace.SYN != 0 {
				conns.Append(connRec{Key: key})
				if conns.Len() > maxConntrack {
					conns.RemoveAt(0)
				}
			}
		} else {
			sum.Count("deny", 1)
			denyLog.Append(logRec{Src: pk.Src, Dst: pk.Dst, TS: float32(pk.TS)})
			if denyLog.Len() > maxLog {
				denyLog.RemoveAt(0)
			}
		}
	}
	return sum, nil
}

// matchChain scans the chain in order and returns the verdict of the
// first matching rule (the chain always terminates with a default rule).
func matchChain(rules ddt.List[ruleRec], env *ddt.Env, pk *trace.Packet) uint8 {
	verdict := verdictDeny
	rules.Iterate(func(_ int, r ruleRec) bool {
		env.Op(5) // field compares
		if !r.MatchAnyProto && r.Proto != pk.Proto {
			return true
		}
		if pk.Src&r.SrcMask != r.SrcNet {
			return true
		}
		if pk.DstPort < r.PortLo || pk.DstPort > r.PortHi {
			return true
		}
		verdict = r.Verdict
		return false
	})
	return verdict
}

// buildChain constructs a deterministic chain of n rules whose match
// depths are spread across the chain: early administrative denies, an
// accept for HTTP about a third in, DNS past the middle, ephemeral port
// slices throughout, and a trailing default deny. Different chain lengths
// therefore shift both the average scan depth and the accept ratio, which
// is what makes the rule count a real exploration parameter.
func buildChain(rules ddt.List[ruleRec], n int) {
	slice := 0
	for i := 0; i < n-1; i++ {
		var r ruleRec
		switch {
		case i == 0:
			// Administrative denies for specific subnets (rarely hit).
			r = ruleRec{SrcNet: 0xc0a80000, SrcMask: 0xffff0000, PortHi: 0xffff, MatchAnyProto: true, Verdict: verdictDeny}
		case i == 1:
			r = ruleRec{SrcNet: 0x0a630000, SrcMask: 0xffff0000, PortHi: 0xffff, MatchAnyProto: true, Verdict: verdictDeny}
		case i == n/3:
			r = ruleRec{PortLo: 80, PortHi: 80, Proto: trace.TCP, Verdict: verdictAccept}
		case i == n/3+1:
			r = ruleRec{PortLo: 25, PortHi: 25, Proto: trace.TCP, Verdict: verdictAccept}
		case i == n/3+2:
			r = ruleRec{PortLo: 21, PortHi: 21, Proto: trace.TCP, Verdict: verdictAccept}
		case i == 2*n/3:
			r = ruleRec{PortLo: 53, PortHi: 53, Proto: trace.UDP, Verdict: verdictAccept}
		default:
			// Ephemeral port slices: each covers a band of high ports.
			lo := uint16(1024 + slice*1024)
			r = ruleRec{PortLo: lo, PortHi: lo + 1023, Proto: trace.TCP, Verdict: verdictAccept}
			slice = (slice + 1) % 39
		}
		rules.Append(r)
	}
	// Default deny terminates the chain.
	rules.Append(ruleRec{PortHi: 0xffff, MatchAnyProto: true, Verdict: verdictDeny})
}
