package ipchains_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/apptest"
	"repro/internal/apps/ipchains"
	"repro/internal/platform"
	"repro/internal/profiler"
)

func TestConformance(t *testing.T) {
	apptest.CheckConformance(t, ipchains.App{})
}

func TestDominantStructures(t *testing.T) {
	apptest.CheckDominant(t, ipchains.App{}, ipchains.RoleConntrack, ipchains.RoleRules)
}

func TestVerdictAccounting(t *testing.T) {
	a := ipchains.App{}
	tr := apptest.LoadTrace(t, a)
	sum, _ := apptest.Run(t, a, tr, apps.Original(a))
	decided := sum.Events["tracked"] + sum.Events["accept"] + sum.Events["deny"]
	if decided != len(tr.Packets) {
		t.Fatalf("decided %d of %d packets: %+v", decided, len(tr.Packets), sum.Events)
	}
	for _, ev := range []string{"tracked", "accept", "deny"} {
		if sum.Events[ev] == 0 {
			t.Errorf("no %q packets; chain or conntrack never exercised", ev)
		}
	}
}

func TestRuleCountKnobChangesBehaviour(t *testing.T) {
	a := ipchains.App{}
	tr := apptest.LoadTrace(t, a)
	verdicts := func(rules int) (accept, deny int, vec float64) {
		p := platform.Default()
		sum, err := a.Run(tr, p, apps.Original(a), apps.Knobs{ipchains.KnobRules: rules}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sum.Events["accept"], sum.Events["deny"], p.Metrics().Accesses
	}
	a32, d32, acc32 := verdicts(32)
	a128, d128, acc128 := verdicts(128)
	if a32+d32 == 0 || a128+d128 == 0 {
		t.Fatal("degenerate runs")
	}
	// Longer chains cover more ephemeral port bands -> more accepts, and
	// cost more accesses per chain scan.
	if a128 <= a32 {
		t.Errorf("accepts with 128 rules (%d) not above 32 rules (%d)", a128, a32)
	}
	if acc128 <= acc32 {
		t.Errorf("accesses with 128 rules (%v) not above 32 rules (%v)", acc128, acc32)
	}
}

// TestMinimalChainDeniesEverything pins the chain semantics at the edge:
// with only the administrative deny and the trailing default deny, no
// packet is ever accepted and nothing enters the connection cache.
func TestMinimalChainDeniesEverything(t *testing.T) {
	a := ipchains.App{}
	tr := apptest.LoadTrace(t, a)
	p := platform.Default()
	sum, err := a.Run(tr, p, apps.Original(a), apps.Knobs{ipchains.KnobRules: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events["accept"] != 0 || sum.Events["tracked"] != 0 {
		t.Fatalf("minimal chain accepted traffic: %+v", sum.Events)
	}
	if sum.Events["deny"] != len(tr.Packets) {
		t.Fatalf("denied %d of %d", sum.Events["deny"], len(tr.Packets))
	}
}

// TestConntrackBypassesChainScan verifies the fast path: tracked packets
// must not pay the rule-chain scan, so a trace with long flows costs
// fewer rule-container accesses per packet than its untracked verdicts
// imply.
func TestConntrackBypassesChainScan(t *testing.T) {
	a := ipchains.App{}
	tr := apptest.LoadTrace(t, a)
	probes := profiler.NewSet()
	p := platform.Default()
	sum, err := a.Run(tr, p, apps.Original(a), a.DefaultKnobs(), probes)
	if err != nil {
		t.Fatal(err)
	}
	scans := sum.Events["accept"] + sum.Events["deny"] // untracked packets only
	ruleOps := probes.Probe(ipchains.RoleRules).Ops
	// One Iterate per scan plus the 64 setup Appends.
	if ruleOps != uint64(scans)+64 {
		t.Errorf("rule-container ops %d != chain scans %d + 64 setup appends", ruleOps, scans)
	}
	if sum.Events["tracked"] == 0 {
		t.Error("no tracked packets; bypass untested")
	}
}
