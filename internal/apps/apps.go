// Package apps defines the contract between the network applications under
// study and the exploration methodology.
//
// An App declares its candidate dynamic containers as named Roles (the
// paper instruments "each candidate DDT of the network application"), runs
// over one packet trace on one simulated Platform under one DDT
// Assignment, and exposes the application-specific network parameters
// (Knobs) the network-level exploration sweeps — the paper's examples
// being the radix tree size of Route, the number of active rules of a
// firewall and the level of fairness of DRR (§3.2).
package apps

import (
	"fmt"
	"sort"

	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Role describes one candidate dynamic data structure of an application.
type Role struct {
	Name        string
	RecordBytes uint32 // simulated payload size of one record
}

// Assignment maps role names to the DDT implementing them. Roles absent
// from the assignment keep the original implementation.
type Assignment map[string]ddt.Kind

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// String renders the assignment as "role=KIND role=KIND", role-sorted —
// the combination label used in logs and Pareto charts.
func (a Assignment) String() string {
	roles := make([]string, 0, len(a))
	for r := range a {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	s := ""
	for i, r := range roles {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%s", r, a[r])
	}
	return s
}

// Knobs are application-specific network-configuration parameters.
type Knobs map[string]int

// Clone returns a copy of the knobs.
func (k Knobs) Clone() Knobs {
	out := make(Knobs, len(k))
	for n, v := range k {
		out[n] = v
	}
	return out
}

// String renders knobs as "name=value", name-sorted; empty knobs render
// as "-".
func (k Knobs) String() string {
	if len(k) == 0 {
		return "-"
	}
	names := make([]string, 0, len(k))
	for n := range k {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", n, k[n])
	}
	return s
}

// OriginalKind is the DDT of the unmodified NetBench implementations: the
// paper states the original dominant structures were single linked lists.
const OriginalKind = ddt.SLL

// Summary reports what an application did during a run, independent of the
// cost metrics: packet count plus named behavioural counters (routes
// installed, rules matched, packets served, ...). The DDT assignment must
// never change a Summary — tests rely on that to prove the refinement
// preserves functionality, the paper's "this procedure does not alter the
// actual functionality of the application".
type Summary struct {
	Packets int
	Events  map[string]int
}

// NewSummary returns an empty summary.
func NewSummary() Summary {
	return Summary{Events: make(map[string]int)}
}

// Count adds n to the named event counter.
func (s *Summary) Count(event string, n int) {
	s.Events[event] += n
}

// Equal reports whether two summaries match exactly.
func (s Summary) Equal(o Summary) bool {
	if s.Packets != o.Packets || len(s.Events) != len(o.Events) {
		return false
	}
	for k, v := range s.Events {
		if o.Events[k] != v {
			return false
		}
	}
	return true
}

// App is a network application under DDT refinement.
type App interface {
	// Name is the benchmark name as the paper uses it (Route, URL,
	// IPchains, DRR).
	Name() string
	// Roles lists every candidate container, most application-central
	// first (order does not affect exploration; dominance is measured).
	Roles() []Role
	// DefaultKnobs returns the reference network-configuration parameters.
	DefaultKnobs() Knobs
	// KnobSweep returns, per knob, the values the network-level
	// exploration examines. Knobs not listed keep their default.
	KnobSweep() map[string][]int
	// TraceNames lists the built-in traces this application is evaluated
	// on (the paper uses 7 networks for Route and IPchains, 5 for URL and
	// DRR).
	TraceNames() []string
	// Run executes the application over tr on p with the given DDT
	// assignment and knobs, returning a behavioural summary. probes may
	// be nil; when set, container accesses are attributed per role for
	// dominance profiling.
	Run(tr *trace.Trace, p *platform.Platform, assign Assignment, knobs Knobs, probes *profiler.Set) (Summary, error)
}

// EnvFor builds the ddt.Env for one container role on p, attaching the
// role's probe when profiling. On an arena-mode platform (UseArenas) the
// environment is additionally bound to the role's private address arena
// and boundary lane, which is what isolates the role's access sub-stream
// for compositional capture.
func EnvFor(p *platform.Platform, probes *profiler.Set, role string) *ddt.Env {
	env := &ddt.Env{Heap: p.Heap, Mem: p.Mem}
	if a, lane, ok := p.ArenaFor(role); ok {
		env.Arena, env.Lane = a, lane
	}
	if probes != nil {
		env.Probe = probes.Probe(role)
	}
	return env
}

// RoleNames returns the application's role names in Roles() order — the
// lane order of arena-mode platforms.
func RoleNames(a App) []string {
	roles := a.Roles()
	names := make([]string, len(roles))
	for i, r := range roles {
		names[i] = r.Name
	}
	return names
}

// KindFor resolves the DDT kind for a role under an assignment, falling
// back to the original implementation.
func KindFor(assign Assignment, role string) ddt.Kind {
	if k, ok := assign[role]; ok {
		return k
	}
	return OriginalKind
}

// Original returns the assignment of the unmodified benchmark: every
// candidate role bound to the original single linked list.
func Original(a App) Assignment {
	out := make(Assignment)
	for _, r := range a.Roles() {
		out[r.Name] = OriginalKind
	}
	return out
}

// ValidateAssignment checks that every assigned role exists in the app.
func ValidateAssignment(a App, assign Assignment) error {
	valid := make(map[string]bool)
	for _, r := range a.Roles() {
		valid[r.Name] = true
	}
	for role := range assign {
		if !valid[role] {
			return fmt.Errorf("apps: %s has no container role %q", a.Name(), role)
		}
	}
	return nil
}

// RoleByName returns the Role definition with the given name.
func RoleByName(a App, name string) (Role, error) {
	for _, r := range a.Roles() {
		if r.Name == name {
			return r, nil
		}
	}
	return Role{}, fmt.Errorf("apps: %s has no container role %q", a.Name(), name)
}
