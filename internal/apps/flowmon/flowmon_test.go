package flowmon_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/apptest"
	"repro/internal/apps/flowmon"
	"repro/internal/platform"
)

func TestConformance(t *testing.T) {
	apptest.CheckConformance(t, flowmon.App{})
}

func TestDominantStructure(t *testing.T) {
	// The flow table and the host table are both linearly probed per
	// packet; they must be the two dominant containers.
	apptest.CheckDominant(t, flowmon.App{}, flowmon.RoleFlows, flowmon.RoleHosts)
}

func TestPacketAccounting(t *testing.T) {
	a := flowmon.App{}
	tr := apptest.LoadTrace(t, a)
	sum, _ := apptest.Run(t, a, tr, apps.Original(a))
	for _, ev := range []string{"flow-new", "flow-finished", "host-new", "alarm-raised", "flow-exported"} {
		if sum.Events[ev] == 0 {
			t.Errorf("no %q events; workload degenerate", ev)
		}
	}
	// Every flow opened is finished, evicted, exported or still live.
	closed := sum.Events["flow-finished"] + sum.Events["flow-evicted"]
	if got := closed + sum.Events["flows-final"]; got != sum.Events["flow-new"] {
		t.Errorf("flow bookkeeping leaks: %d closed + %d live of %d opened",
			closed, sum.Events["flows-final"], sum.Events["flow-new"])
	}
}

func TestCapEvicts(t *testing.T) {
	a := flowmon.App{}
	tr := apptest.LoadTrace(t, a)
	sum, err := a.Run(tr, platform.Default(), apps.Original(a),
		apps.Knobs{flowmon.KnobFlows: 4, flowmon.KnobThreshold: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events["flow-evicted"] == 0 {
		t.Fatal("tiny flow cap never evicted")
	}
	if sum.Events["flows-final"] > 4 {
		t.Fatalf("final table %d exceeds cap", sum.Events["flows-final"])
	}
}
