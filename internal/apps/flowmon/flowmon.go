// Package flowmon is the K=5 extension case study: a per-flow traffic
// monitor (NetFlow-style accounting with threshold alarms). Its five
// candidate containers push the combination space to 10^5 — the scale
// the paper's methodology targets but a flat enumeration cannot reach —
// which is exactly the workload the exploration engine's branch-and-
// bound searcher exists for. Like nat, it plugs into the methodology
// flow with zero changes to the methodology code.
//
// Candidate containers: the active-flow table (probed on every packet),
// per-host traffic counters, a per-service port histogram, the alarm
// queue for flows crossing the byte threshold, and the expiry stage
// where finished flows wait before their records are aged out.
package flowmon

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Container role names.
const (
	RoleFlows  = "flow-table"
	RoleHosts  = "host-stats"
	RolePorts  = "port-hist"
	RoleAlarms = "alarm-queue"
	RoleExpiry = "expiry-stage"
)

// Knobs: the flow-table capacity (provisioned concurrent flows) and the
// alarm byte threshold.
const (
	KnobFlows     = "maxflows"
	KnobThreshold = "alarmkb"
)

// flowRec is one active flow's accounting record.
type flowRec struct {
	Key     trace.FlowKey
	Packets uint32
	Bytes   uint64
	Alarmed bool
}

// hostRec is one host's aggregate counters.
type hostRec struct {
	Addr    uint32
	Packets uint64
	Bytes   uint64
}

// portRec is one service bucket of the destination-port histogram.
type portRec struct {
	Bucket  uint16
	Packets uint64
}

// alarmRec is one threshold-crossing event awaiting export.
type alarmRec struct {
	Key   trace.FlowKey
	Bytes uint64
}

// expiryRec is one finished flow staged for age-out.
type expiryRec struct {
	Key   trace.FlowKey
	Bytes uint64
}

// App is the flow monitor.
type App struct{}

var _ apps.App = App{}

// Name returns "FlowMon".
func (App) Name() string { return "FlowMon" }

// Roles lists the five candidate containers.
func (App) Roles() []apps.Role {
	return []apps.Role{
		{Name: RoleFlows, RecordBytes: 32},
		{Name: RoleHosts, RecordBytes: 24},
		{Name: RolePorts, RecordBytes: 12},
		{Name: RoleAlarms, RecordBytes: 24},
		{Name: RoleExpiry, RecordBytes: 24},
	}
}

// DefaultKnobs provisions a mid-size monitor.
func (App) DefaultKnobs() apps.Knobs {
	return apps.Knobs{KnobFlows: 96, KnobThreshold: 8}
}

// KnobSweep explores two provisioning levels per knob.
func (App) KnobSweep() map[string][]int {
	return map[string][]int{KnobFlows: {64, 128}, KnobThreshold: {4, 16}}
}

// TraceNames: a monitoring mix of campus and wireless collection points.
func (App) TraceNames() []string {
	return []string{"FLA", "BWY-I", "Brown", "Collis", "Whittemore-II"}
}

// portBucket coarsens a destination port into one of 32 service buckets,
// keeping the histogram small but still touched on every packet.
func portBucket(port uint16) uint16 {
	if port < 1024 {
		return port >> 6 // 16 well-known-service buckets
	}
	return 16 + (port>>12)&15
}

// Run executes the monitor over the trace.
func (a App) Run(tr *trace.Trace, p *platform.Platform, assign apps.Assignment, knobs apps.Knobs, probes *profiler.Set) (apps.Summary, error) {
	sum := apps.NewSummary()
	if err := apps.ValidateAssignment(a, assign); err != nil {
		return sum, err
	}
	maxFlows := knobs[KnobFlows]
	if maxFlows <= 0 {
		return sum, fmt.Errorf("flowmon: knob %q must be positive, got %d", KnobFlows, maxFlows)
	}
	threshold := uint64(knobs[KnobThreshold]) << 10
	if threshold == 0 {
		return sum, fmt.Errorf("flowmon: knob %q must be positive, got %d", KnobThreshold, knobs[KnobThreshold])
	}

	flowEnv := apps.EnvFor(p, probes, RoleFlows)
	hostEnv := apps.EnvFor(p, probes, RoleHosts)
	portEnv := apps.EnvFor(p, probes, RolePorts)
	alarmEnv := apps.EnvFor(p, probes, RoleAlarms)
	expiryEnv := apps.EnvFor(p, probes, RoleExpiry)
	flows := ddt.New[flowRec](apps.KindFor(assign, RoleFlows), flowEnv, 32)
	hosts := ddt.New[hostRec](apps.KindFor(assign, RoleHosts), hostEnv, 24)
	ports := ddt.New[portRec](apps.KindFor(assign, RolePorts), portEnv, 12)
	alarms := ddt.New[alarmRec](apps.KindFor(assign, RoleAlarms), alarmEnv, 24)
	expiry := ddt.New[expiryRec](apps.KindFor(assign, RoleExpiry), expiryEnv, 24)

	// Preload the port histogram: all 32 service buckets.
	for b := 0; b < 32; b++ {
		ports.Append(portRec{Bucket: uint16(b)})
	}

	for i := range tr.Packets {
		pk := &tr.Packets[i]
		sum.Packets++
		p.Mem.Op(60) // header parse and flow hash, DDT-independent

		key := pk.Key()
		idx, rec, ok := ddt.Find(flows, flowEnv, 6, func(r flowRec) bool {
			return r.Key == key
		})
		if !ok {
			rec = flowRec{Key: key}
			flows.Append(rec)
			idx = flows.Len() - 1
			sum.Count("flow-new", 1)
			if flows.Len() > maxFlows {
				old := flows.RemoveAt(0) // age out the oldest record
				expiry.Append(expiryRec{Key: old.Key, Bytes: old.Bytes})
				sum.Count("flow-evicted", 1)
				idx = flows.Len() - 1
			}
		}
		rec.Packets++
		rec.Bytes += uint64(pk.Size)
		if !rec.Alarmed && rec.Bytes >= threshold {
			rec.Alarmed = true
			alarms.Append(alarmRec{Key: key, Bytes: rec.Bytes})
			sum.Count("alarm-raised", 1)
		}
		if pk.Flags&trace.FIN != 0 {
			flows.RemoveAt(idx)
			expiry.Append(expiryRec{Key: rec.Key, Bytes: rec.Bytes})
			sum.Count("flow-finished", 1)
		} else {
			flows.Set(idx, rec)
		}

		// Per-host accounting for the sender (insert on first sight).
		hidx, h, seen := ddt.Find(hosts, hostEnv, 2, func(r hostRec) bool {
			return r.Addr == pk.Src
		})
		if !seen {
			hosts.Append(hostRec{Addr: pk.Src})
			hidx = hosts.Len() - 1
			h = hosts.Get(hidx)
			sum.Count("host-new", 1)
		}
		h.Packets++
		h.Bytes += uint64(pk.Size)
		hosts.Set(hidx, h)

		// Service histogram.
		b := int(portBucket(pk.DstPort))
		pr := ports.Get(b)
		pr.Packets++
		ports.Set(b, pr)

		// Every 64 packets the export timer fires: drain staged expiries
		// and shed exported alarms.
		if i%64 == 63 {
			for expiry.Len() > 0 {
				expiry.RemoveAt(expiry.Len() - 1)
				sum.Count("flow-exported", 1)
			}
			for alarms.Len() > 8 {
				alarms.RemoveAt(0)
				sum.Count("alarm-exported", 1)
			}
		}
	}
	sum.Count("flows-final", flows.Len())
	sum.Count("hosts-final", hosts.Len())
	sum.Count("alarms-final", alarms.Len())
	return sum, nil
}
