// Package netapps is the catalog of the four NetBench case studies the
// paper evaluates (§4): Route, URL, IPchains and DRR. Tools and the
// benchmark harness look applications up here by the names the paper uses.
package netapps

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/drr"
	"repro/internal/apps/flowmon"
	"repro/internal/apps/ipchains"
	"repro/internal/apps/nat"
	"repro/internal/apps/route"
	"repro/internal/apps/urlsw"
)

// All returns the four case studies in the paper's presentation order.
// Extension applications are deliberately excluded so the experiment
// harness reproduces exactly the paper's table rows.
func All() []apps.App {
	return []apps.App{route.App{}, urlsw.App{}, ipchains.App{}, drr.App{}}
}

// Extensions returns applications beyond the paper's four — proof that
// the methodology plugs into "any given network application". FlowMon's
// five candidate containers span the 10^5-combination scale the
// branch-and-bound searcher targets.
func Extensions() []apps.App {
	return []apps.App{nat.App{}, flowmon.App{}}
}

// Names returns the application names in the paper's order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name()
	}
	return names
}

// ByName returns the application with the given name, searching the
// paper's case studies first and the extensions after.
func ByName(name string) (apps.App, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	for _, a := range Extensions() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("netapps: unknown application %q (have %v)", name, Names())
}
