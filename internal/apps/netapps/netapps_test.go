package netapps_test

import (
	"testing"

	"repro/internal/apps/netapps"
)

func TestAllMatchesPaperOrder(t *testing.T) {
	want := []string{"Route", "URL", "IPchains", "DRR"}
	got := netapps.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByNameFindsPaperAppsAndExtensions(t *testing.T) {
	for _, name := range append(netapps.Names(), "NAT") {
		a, err := netapps.ByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := netapps.ByName("Doom"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestExtensionsAreNotInAll(t *testing.T) {
	inAll := make(map[string]bool)
	for _, a := range netapps.All() {
		inAll[a.Name()] = true
	}
	for _, e := range netapps.Extensions() {
		if inAll[e.Name()] {
			t.Errorf("extension %q leaked into the paper suite", e.Name())
		}
	}
	if len(netapps.Extensions()) == 0 {
		t.Error("no extension applications registered")
	}
}
