package route_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/apptest"
	"repro/internal/apps/route"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/trace"
)

func TestConformance(t *testing.T) {
	apptest.CheckConformance(t, route.App{})
}

func TestDominantStructures(t *testing.T) {
	// The paper: "Two dominant DDTs are present in the Route application,
	// radix node ... and the rtentry structure".
	apptest.CheckDominant(t, route.App{}, route.RoleNodes, route.RoleEntries)
}

// knobTrace is long enough for the trace's prefix diversity to exceed the
// routing-table sizes, which is when the paper's radix-size parameter
// starts to matter.
func knobTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Builtin("FLA", 2500)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEveryPacketRouted(t *testing.T) {
	a := route.App{}
	tr := knobTrace(t)
	sum, _ := apptest.Run(t, a, tr, apps.Original(a))
	routed := sum.Events["lpm-match"] + sum.Events["default-route"]
	if routed != len(tr.Packets) {
		t.Fatalf("routed %d of %d packets", routed, len(tr.Packets))
	}
	if sum.Events["lpm-match"] == 0 {
		t.Error("no packet ever matched an installed prefix")
	}
	if sum.Events["default-route"] == 0 {
		t.Error("no packet ever used the default route; table covers everything, knob is dead")
	}
}

func TestTableSizeKnobBoundsTree(t *testing.T) {
	a := route.App{}
	tr := knobTrace(t)
	run := func(table int) (entries, nodes int) {
		p := platform.Default()
		sum, err := a.Run(tr, p, apps.Original(a), apps.Knobs{route.KnobTable: table}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sum.Events["table-size"], sum.Events["tree-nodes"]
	}
	e128, n128 := run(128)
	e256, n256 := run(256)
	if e128 > 128+1 { // + default route
		t.Errorf("table=128 grew to %d entries", e128)
	}
	if e256 <= e128 {
		t.Errorf("table=256 (%d entries) not larger than table=128 (%d)", e256, e128)
	}
	if n256 <= n128 {
		t.Errorf("tree nodes did not grow with the table: %d vs %d", n256, n128)
	}
	// A crit-bit tree over E prefixes has exactly 2E-1 nodes.
	routes128 := e128 - 1
	if n128 != 2*routes128-1 {
		t.Errorf("crit-bit node count = %d for %d prefixes, want %d", n128, routes128, 2*routes128-1)
	}
}

// TestNodeStoreChoiceMatters checks the application-level claim behind
// Figure 4: an array node store must beat a singly linked one on accesses,
// and cost less energy, because lookups fetch nodes by index.
func TestNodeStoreChoiceMatters(t *testing.T) {
	a := route.App{}
	tr := apptest.LoadTrace(t, a)
	assignAR := apps.Original(a)
	assignAR[route.RoleNodes] = ddt.AR
	_, arPlat := apptest.Run(t, a, tr, assignAR)
	_, sllPlat := apptest.Run(t, a, tr, apps.Original(a))
	ar, sll := arPlat.Metrics(), sllPlat.Metrics()
	if ar.Accesses*2 > sll.Accesses {
		t.Errorf("AR node store %v accesses vs SLL %v; want >=2x reduction", ar.Accesses, sll.Accesses)
	}
	if ar.Energy >= sll.Energy {
		t.Errorf("AR node store energy %v >= SLL %v", ar.Energy, sll.Energy)
	}
}

// TestLookupMatchesReferenceModel validates the crit-bit radix tree
// against an independent map-based model of the same route-learning
// policy: prefixes are installed first-come-first-served from packet
// destinations and sources until the table fills, and a packet matches
// iff its destination /24 was installed before it was forwarded.
func TestLookupMatchesReferenceModel(t *testing.T) {
	a := route.App{}
	for _, traceName := range []string{"FLA", "Berry"} {
		tr, err := trace.Builtin(traceName, 2500)
		if err != nil {
			t.Fatal(err)
		}
		const table = 128
		installed := make(map[uint32]bool)
		wantMatch, wantDefault := 0, 0
		for i := range tr.Packets {
			pk := &tr.Packets[i]
			for _, prefix := range []uint32{pk.Dst & 0xffffff00, pk.Src & 0xffffff00} {
				if !installed[prefix] && len(installed) < table {
					installed[prefix] = true
				}
			}
			if installed[pk.Dst&0xffffff00] {
				wantMatch++
			} else {
				wantDefault++
			}
		}
		p := platform.Default()
		sum, err := a.Run(tr, p, apps.Original(a), apps.Knobs{route.KnobTable: table}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Events["lpm-match"] != wantMatch || sum.Events["default-route"] != wantDefault {
			t.Errorf("%s: lookup decisions (match %d, default %d) diverge from reference (match %d, default %d)",
				traceName, sum.Events["lpm-match"], sum.Events["default-route"], wantMatch, wantDefault)
		}
		if sum.Events["route-add"] != len(installed) {
			t.Errorf("%s: installed %d routes, reference %d", traceName, sum.Events["route-add"], len(installed))
		}
	}
}
