// Package route reimplements the NetBench "Route" benchmark: IPv4
// forwarding with a radix (PATRICIA) routing table.
//
// The paper identifies two dominant dynamic structures in Route: "the
// radix_node structure forms the nodes of the tree and the rtentry
// structure holding the route entries" (§4). Here the tree is a crit-bit
// PATRICIA over /24 prefixes whose nodes live in the "radix-nodes"
// container and whose route entries live in the "rtentries" container;
// nodes reference each other by container index, so every step of a
// lookup is an indexed container access and the DDT choice for the node
// store dominates the access pattern — exactly the trade-off the paper's
// Figure 4 explores (its highlighted optimum is an array node store with a
// doubly-linked entry store).
//
// Two minor candidate containers, the ARP next-hop cache and per-interface
// statistics, exist so the profiling step has something to rank *below*
// the dominant pair.
package route

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Container role names.
const (
	RoleNodes   = "radix-nodes"
	RoleEntries = "rtentries"
	RoleARP     = "arp-cache"
	RoleStats   = "if-stats"
)

// KnobTable is the routing-table size knob — the paper's "Radix tree size"
// network parameter, explored "for 2 different values ... (for 128 and 256
// entries)".
const KnobTable = "table"

// nodeRec is the radix_node record: a crit-bit tree node. Internal nodes
// branch on Bit; leaves (Bit < 0) carry the prefix key and the rtentry id.
type nodeRec struct {
	Bit         int32 // branch bit (0 = MSB); -1 marks a leaf
	Left, Right int32 // child node ids
	Key         uint32
	Entry       int32
}

// entryRec is the rtentry record (destination, mask, gateway and the
// bookkeeping fields of the BSD rtentry).
type entryRec struct {
	Dst     uint32
	Mask    uint32
	Gateway uint32
	Flags   uint32
	Use     uint32
	Metric  uint32
}

// arpRec is one next-hop cache record.
type arpRec struct {
	IP  uint32
	MAC uint64
}

// statRec is one per-interface counter record.
type statRec struct {
	Packets uint64
	Bytes   uint64
}

// App is the Route benchmark.
type App struct{}

var _ apps.App = App{}

// Name returns "Route".
func (App) Name() string { return "Route" }

// Roles lists the candidate containers.
func (App) Roles() []apps.Role {
	return []apps.Role{
		{Name: RoleNodes, RecordBytes: 20},
		{Name: RoleEntries, RecordBytes: 32},
		{Name: RoleARP, RecordBytes: 16},
		{Name: RoleStats, RecordBytes: 16},
	}
}

// DefaultKnobs uses the paper's smaller radix table.
func (App) DefaultKnobs() apps.Knobs { return apps.Knobs{KnobTable: 128} }

// KnobSweep explores the paper's two radix-table sizes.
func (App) KnobSweep() map[string][]int {
	return map[string][]int{KnobTable: {128, 256}}
}

// TraceNames: "Seven network configurations were used, utilizing 7
// different networks" (§4) — one trace from each of seven networks,
// including the BWY-I and Berry traces Figure 4 singles out.
func (App) TraceNames() []string {
	return []string{"FLA", "SDC", "BWY-I", "Berry", "Brown", "Collis", "Sudikoff"}
}

// state is one simulation instance.
type state struct {
	nodes   ddt.List[nodeRec]
	entries ddt.List[entryRec]
	arp     ddt.List[arpRec]
	stats   ddt.List[statRec]

	nodeEnv, entryEnv, arpEnv, statEnv *ddt.Env
	mem                                *platform.Platform

	root     int32 // root node id, -1 when empty
	maxTable int
	known    map[uint32]bool // prefixes already installed (control state)
}

// Run executes Route over the trace.
func (a App) Run(tr *trace.Trace, p *platform.Platform, assign apps.Assignment, knobs apps.Knobs, probes *profiler.Set) (apps.Summary, error) {
	sum := apps.NewSummary()
	if err := apps.ValidateAssignment(a, assign); err != nil {
		return sum, err
	}
	table := knobs[KnobTable]
	if table <= 0 {
		return sum, fmt.Errorf("route: knob %q must be positive, got %d", KnobTable, table)
	}
	s := &state{
		nodeEnv:  apps.EnvFor(p, probes, RoleNodes),
		entryEnv: apps.EnvFor(p, probes, RoleEntries),
		arpEnv:   apps.EnvFor(p, probes, RoleARP),
		statEnv:  apps.EnvFor(p, probes, RoleStats),
		mem:      p,
		root:     -1,
		maxTable: table,
		known:    make(map[uint32]bool),
	}
	s.nodes = ddt.New[nodeRec](apps.KindFor(assign, RoleNodes), s.nodeEnv, 20)
	s.entries = ddt.New[entryRec](apps.KindFor(assign, RoleEntries), s.entryEnv, 32)
	s.arp = ddt.New[arpRec](apps.KindFor(assign, RoleARP), s.arpEnv, 16)
	s.stats = ddt.New[statRec](apps.KindFor(assign, RoleStats), s.statEnv, 16)

	// Default route (entry 0) and interface counters.
	s.entries.Append(entryRec{Dst: 0, Mask: 0, Gateway: 0x0a000001, Flags: 1})
	for i := 0; i < 4; i++ {
		s.stats.Append(statRec{})
	}

	for i := range tr.Packets {
		pk := &tr.Packets[i]
		sum.Packets++

		// Routing updates arrive as previously unseen prefixes — forward
		// routes from destinations, reverse-path routes from sources —
		// until the configured table size is reached. The table fills
		// dynamically, interleaving inserts with lookups.
		s.maybeAddRoute(pk.Dst&0xffffff00, &sum)
		s.maybeAddRoute(pk.Src&0xffffff00, &sum)

		entry, matched := s.lookup(pk.Dst)
		if matched {
			sum.Count("lpm-match", 1)
		} else {
			sum.Count("default-route", 1)
		}
		s.forward(pk, entry)
	}
	sum.Count("table-size", s.entries.Len())
	sum.Count("tree-nodes", s.nodes.Len())
	return sum, nil
}

// maybeAddRoute installs a /24 route for prefix if it is new and the
// table has room.
func (s *state) maybeAddRoute(prefix uint32, sum *apps.Summary) {
	if s.known[prefix] || len(s.known) >= s.maxTable {
		return
	}
	s.known[prefix] = true
	// One of the router's four next hops serves each prefix.
	gw := 0x0a0000fe - (prefix>>8)%4
	entryID := int32(s.entries.Len())
	s.entries.Append(entryRec{Dst: prefix, Mask: 0xffffff00, Gateway: gw, Flags: 3})
	s.insert(prefix, entryID)
	sum.Count("route-add", 1)
}

// bit returns bit i (0 = MSB) of key.
func bit(key uint32, i int32) int32 {
	return int32(key>>(31-uint(i))) & 1
}

// insert adds a /24 prefix leaf to the crit-bit tree. Costs are charged
// through the container accesses (Get to descend, Set to splice, Append
// for the new nodes).
func (s *state) insert(key uint32, entryID int32) {
	s.mem.Mem.Op(4) // prefix/mask preparation
	if s.root < 0 {
		s.root = s.appendNode(nodeRec{Bit: -1, Key: key, Entry: entryID})
		return
	}
	// Phase 1: descend to the closest leaf.
	id := s.root
	rec := s.nodes.Get(int(id))
	for rec.Bit >= 0 {
		if bit(key, rec.Bit) == 0 {
			id = rec.Left
		} else {
			id = rec.Right
		}
		rec = s.nodes.Get(int(id))
	}
	if rec.Key == key {
		// Duplicate prefix: replace the route (update the leaf).
		rec.Entry = entryID
		s.nodes.Set(int(id), rec)
		return
	}
	// Critical bit: first position where key and the leaf key differ.
	diff := key ^ rec.Key
	crit := int32(0)
	for bit(diff, crit) == 0 {
		crit++
	}
	s.mem.Mem.Op(uint64(crit)/8 + 1)

	leafID := s.appendNode(nodeRec{Bit: -1, Key: key, Entry: entryID})

	// Phase 2: descend again to the splice point (parent whose branch bit
	// exceeds crit, or the leaf itself).
	var parent int32 = -1
	var fromLeft bool
	id = s.root
	rec = s.nodes.Get(int(id))
	for rec.Bit >= 0 && rec.Bit < crit {
		parent = id
		fromLeft = bit(key, rec.Bit) == 0
		if fromLeft {
			id = rec.Left
		} else {
			id = rec.Right
		}
		rec = s.nodes.Get(int(id))
	}

	inner := nodeRec{Bit: crit}
	if bit(key, crit) == 0 {
		inner.Left, inner.Right = leafID, id
	} else {
		inner.Left, inner.Right = id, leafID
	}
	innerID := s.appendNode(inner)

	if parent < 0 {
		s.root = innerID
		return
	}
	prec := s.nodes.Get(int(parent))
	if fromLeft {
		prec.Left = innerID
	} else {
		prec.Right = innerID
	}
	s.nodes.Set(int(parent), prec)
}

func (s *state) appendNode(rec nodeRec) int32 {
	id := int32(s.nodes.Len())
	s.nodes.Append(rec)
	return id
}

// lookup walks the tree for dst and returns the matching rtentry (falling
// back to entry 0, the default route, when the best leaf does not cover
// dst) and whether a prefix matched.
func (s *state) lookup(dst uint32) (entryRec, bool) {
	if s.root < 0 {
		return s.entries.Get(0), false
	}
	id := s.root
	rec := s.nodes.Get(int(id))
	for rec.Bit >= 0 {
		if bit(dst, rec.Bit) == 0 {
			id = rec.Left
		} else {
			id = rec.Right
		}
		rec = s.nodes.Get(int(id))
	}
	e := s.entries.Get(int(rec.Entry))
	s.mem.Mem.Op(2) // mask-and-compare
	if dst&e.Mask == e.Dst {
		return e, true
	}
	return s.entries.Get(0), false
}

// forward models the per-packet output path: ARP next-hop resolution and
// interface statistics.
func (s *state) forward(pk *trace.Packet, e entryRec) {
	// Next-hop cache: linear search, insert on miss, LRU-style eviction.
	idx, _, ok := ddt.Find(s.arp, s.arpEnv, 2, func(r arpRec) bool { return r.IP == e.Gateway })
	if !ok {
		s.arp.Append(arpRec{IP: e.Gateway, MAC: uint64(e.Gateway) * 0x1b3})
		if s.arp.Len() > 32 {
			s.arp.RemoveAt(0)
		}
	} else {
		_ = idx
	}
	// Interface counters, one of four simulated ports.
	ifc := int(e.Gateway & 3)
	st := s.stats.Get(ifc)
	st.Packets++
	st.Bytes += uint64(pk.Size)
	s.stats.Set(ifc, st)
	// Fixed per-packet datapath work: header validation, checksum
	// update, TTL decrement, rewrite. This compute is DDT-independent
	// and dilutes the execution-time spread, as on the paper's host.
	s.mem.Mem.Op(120)
}
