package drr_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/apptest"
	"repro/internal/apps/drr"
	"repro/internal/ddt"
)

func TestConformance(t *testing.T) {
	apptest.CheckConformance(t, drr.App{})
}

func TestDominantStructures(t *testing.T) {
	apptest.CheckDominant(t, drr.App{}, drr.RoleFlows, drr.RoleQueue)
}

func TestWorkConservation(t *testing.T) {
	a := drr.App{}
	tr := apptest.LoadTrace(t, a)
	sum, _ := apptest.Run(t, a, tr, apps.Original(a))
	if got := sum.Events["served"] + sum.Events["backlog"]; got != len(tr.Packets) {
		t.Fatalf("served %d + backlog %d != %d packets",
			sum.Events["served"], sum.Events["backlog"], len(tr.Packets))
	}
	// With a service budget of 2 per arrival the scheduler must drain
	// almost everything.
	if sum.Events["backlog"]*10 > len(tr.Packets) {
		t.Errorf("backlog %d of %d packets; scheduler starved", sum.Events["backlog"], len(tr.Packets))
	}
	if sum.Events["flow-created"] < 10 {
		t.Errorf("only %d flows; scheduling trivial", sum.Events["flow-created"])
	}
	if sum.Events["max-active-flows"] < 2 {
		t.Errorf("max active flows %d; no concurrency, round robin untested", sum.Events["max-active-flows"])
	}
}

// TestOpposingPreferences checks the tension the paper's DRR case study
// rests on: the flow list prefers cyclic-scan-friendly structures while
// the packet queues prefer head-removal-friendly ones, so no single kind
// wins both.
func TestOpposingPreferences(t *testing.T) {
	a := drr.App{}
	tr := apptest.LoadTrace(t, a)
	accesses := func(flowKind, queueKind ddt.Kind) float64 {
		assign := apps.Original(a)
		assign[drr.RoleFlows] = flowKind
		assign[drr.RoleQueue] = queueKind
		_, plat := apptest.Run(t, a, tr, assign)
		return plat.Metrics().Accesses
	}
	// For the packet-queue role (fixed reasonable flow store): an array
	// queue pays head-removal shifting; a list queue does not.
	arQueue := accesses(ddt.DLLO, ddt.AR)
	sllQueue := accesses(ddt.DLLO, ddt.SLL)
	if sllQueue >= arQueue {
		t.Errorf("queue role: SLL (%v accesses) should beat AR (%v) on head removals", sllQueue, arQueue)
	}
	// For the flow-list role (fixed queue): a roving or array structure
	// should beat a plain SLL whose cyclic Get(rr) walks from the head.
	sllFlows := accesses(ddt.SLL, ddt.SLL)
	dlloFlows := accesses(ddt.DLLO, ddt.SLL)
	if dlloFlows >= sllFlows {
		t.Errorf("flow role: DLL(O) (%v accesses) should beat SLL (%v) on cyclic visits", dlloFlows, sllFlows)
	}
}
