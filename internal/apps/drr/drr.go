// Package drr reimplements the NetBench "DRR" benchmark: the Deficit
// Round Robin fair scheduler of Shreedhar & Varghese, queueing arriving
// packets per flow and serving flows round-robin with a per-visit quantum.
//
// Candidate containers: the active-flow list (linear lookup on every
// arrival, cyclic indexed visits by the scheduler — the access pattern
// roving pointers are made for) and the per-flow packet queues (append at
// the tail, inspect and remove at the head — the access pattern linked
// lists are made for). The opposing preferences of these two dominant
// structures are what give DRR the widest energy/time trade-off span in
// the paper's Table 2 (93% energy, 48% time). The quantum is the paper's
// "Level of Fairness" parameter.
package drr

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ddt"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// Container role names.
const (
	RoleFlows = "flows"
	RoleQueue = "pktqueue"
	RoleStats = "class-stats"
)

// KnobQuantum is the DRR quantum in bytes — the paper's "Level of
// Fairness used in the Deficit Round Robin scheduling application".
const KnobQuantum = "quantum"

// flowRec is one active flow of the scheduler.
type flowRec struct {
	Key     uint32 // flow hash
	Deficit uint32 // DRR deficit counter, bytes
	Packets uint32
}

// pktRec is one queued packet descriptor.
type pktRec struct {
	Size uint16
	TS   float32
}

// statRec is one traffic-class counter record.
type statRec struct {
	Served uint64
	Bytes  uint64
}

// App is the DRR benchmark.
type App struct{}

var _ apps.App = App{}

// Name returns "DRR".
func (App) Name() string { return "DRR" }

// Roles lists the candidate containers.
func (App) Roles() []apps.Role {
	return []apps.Role{
		{Name: RoleFlows, RecordBytes: 24},
		{Name: RoleQueue, RecordBytes: 16},
		{Name: RoleStats, RecordBytes: 16},
	}
}

// DefaultKnobs uses a sub-MTU quantum: large packets wait out multiple
// round-robin visits, the classic fairness/latency setting.
func (App) DefaultKnobs() apps.Knobs { return apps.Knobs{KnobQuantum: 600} }

// KnobSweep is empty: the paper explores DRR across networks only
// (500 simulations = 100 combinations x 5 networks).
func (App) KnobSweep() map[string][]int { return nil }

// TraceNames: five networks with a mix of backbone and wireless load.
func (App) TraceNames() []string {
	return []string{"FLA", "SDC", "BWY-II", "Collis", "Whittemore-II"}
}

// Service rounds are driven by trace time: the output link wakes every
// windowFraction of the trace span and transmits at most serviceBudget
// packets. The link keeps up on average (budget exceeds the mean arrivals
// per window) but traffic bursts within a window genuinely backlog the
// per-flow queues — which is where DRR's fairness, and the head-of-line
// access pattern of the packet queues, actually materializes.
const (
	arrivalsPerWindow = 8  // mean packet arrivals per service window
	serviceBudget     = 10 // packets transmitted per window
)

// Run executes the scheduler over the trace.
func (a App) Run(tr *trace.Trace, p *platform.Platform, assign apps.Assignment, knobs apps.Knobs, probes *profiler.Set) (apps.Summary, error) {
	sum := apps.NewSummary()
	if err := apps.ValidateAssignment(a, assign); err != nil {
		return sum, err
	}
	quantum := knobs[KnobQuantum]
	if quantum <= 0 {
		return sum, fmt.Errorf("drr: knob %q must be positive, got %d", KnobQuantum, quantum)
	}
	flowEnv := apps.EnvFor(p, probes, RoleFlows)
	queueEnv := apps.EnvFor(p, probes, RoleQueue)
	statEnv := apps.EnvFor(p, probes, RoleStats)
	queueKind := apps.KindFor(assign, RoleQueue)

	flows := ddt.New[flowRec](apps.KindFor(assign, RoleFlows), flowEnv, 24)
	stats := ddt.New[statRec](apps.KindFor(assign, RoleStats), statEnv, 16)
	for i := 0; i < 4; i++ {
		stats.Append(statRec{})
	}
	// queues[i] is the packet queue of flows[i]; the slices move together.
	// Emptied queue objects return to a pool for reuse, as the original
	// implementation recycles its queue headers instead of leaking one
	// allocation per flow lifetime.
	var queues []ddt.List[pktRec]
	var qpool []ddt.List[pktRec]
	newQueue := func() ddt.List[pktRec] {
		if n := len(qpool); n > 0 {
			q := qpool[n-1]
			qpool = qpool[:n-1]
			return q
		}
		return ddt.New[pktRec](queueKind, queueEnv, 16)
	}

	span := 1.0
	if n := len(tr.Packets); n > 0 {
		span = tr.Packets[n-1].TS - tr.Packets[0].TS
	}
	window := span / (float64(len(tr.Packets))/arrivalsPerWindow + 1)
	nextService := window
	if len(tr.Packets) > 0 {
		nextService = tr.Packets[0].TS + window
	}

	rr := 0 // round-robin cursor into the flow list
	maxActive := 0
	serviceRound := func() {
		// DRR visits flows cyclically, granting each visited flow one
		// quantum and draining its head-of-line packets while the deficit
		// covers them.
		served := 0
		for served < serviceBudget && flows.Len() > 0 {
			if rr >= flows.Len() {
				rr = 0
			}
			f := flows.Get(rr)
			f.Deficit += uint32(quantum)
			q := queues[rr]
			for q.Len() > 0 {
				head := q.Get(0)
				if uint32(head.Size) > f.Deficit {
					break
				}
				q.RemoveAt(0)
				f.Deficit -= uint32(head.Size)
				served++
				sum.Count("served", 1)
				recordServe(stats, head)
				p.Mem.Op(4) // dequeue bookkeeping, transmit descriptor
				if served >= serviceBudget {
					break
				}
			}
			if q.Len() == 0 {
				// Shreedhar–Varghese: an idle flow leaves the active list
				// and forfeits its deficit.
				flows.RemoveAt(rr)
				queues = append(queues[:rr], queues[rr+1:]...)
				qpool = append(qpool, q)
				// rr now points at the next flow already.
			} else {
				flows.Set(rr, f)
				rr++
			}
		}
	}

	for i := range tr.Packets {
		pk := &tr.Packets[i]
		sum.Packets++
		p.Mem.Op(50) // classification hash and descriptor setup
		key := flowHash(pk)

		// Enqueue: find or create the flow, then queue the packet.
		idx, fl, ok := ddt.Find(flows, flowEnv, 2, func(f flowRec) bool { return f.Key == key })
		if !ok {
			idx = flows.Len()
			fl = flowRec{Key: key}
			flows.Append(fl)
			queues = append(queues, newQueue())
			sum.Count("flow-created", 1)
		}
		if flows.Len() > maxActive {
			maxActive = flows.Len()
		}
		queues[idx].Append(pktRec{Size: pk.Size, TS: float32(pk.TS)})
		fl.Packets++
		flows.Set(idx, fl)

		for pk.TS >= nextService {
			serviceRound()
			nextService += window
		}
	}
	// Drain what the trace left behind, as the real scheduler would.
	for prev := -1; flows.Len() > 0 && flows.Len() != prev; {
		prev = flows.Len()
		serviceRound()
	}
	sum.Count("max-active-flows", maxActive)
	sum.Count("backlog", countBacklog(queues))
	return sum, nil
}

// countBacklog totals the packets still queued when the trace ends.
func countBacklog(queues []ddt.List[pktRec]) int {
	n := 0
	for _, q := range queues {
		n += q.Len()
	}
	return n
}

// flowHash folds the 5-tuple into the flow key DRR schedules on.
func flowHash(pk *trace.Packet) uint32 {
	h := pk.Src*2654435761 ^ pk.Dst*40503 ^ uint32(pk.SrcPort)<<16 ^ uint32(pk.DstPort) ^ uint32(pk.Proto)<<24
	return h
}

// recordServe updates the traffic-class counters (classes by packet size).
func recordServe(stats ddt.List[statRec], pk pktRec) {
	class := 0
	switch {
	case pk.Size < 128:
		class = 0
	case pk.Size < 512:
		class = 1
	case pk.Size < 1024:
		class = 2
	default:
		class = 3
	}
	st := stats.Get(class)
	st.Served++
	st.Bytes += uint64(pk.Size)
	stats.Set(class, st)
}
