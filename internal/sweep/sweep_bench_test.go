package sweep_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps/route"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// The capture-once / replay-many benchmarks, pinning the three levels of
// the tentpole claim on Route:
//
//   - BenchmarkSweepReplayVsExecute: a cold 5-platform sweep (capture on
//     the first platform, warm multi-replay for the rest) against five
//     independent full methodology executions. The capture run and the
//     per-platform cache-model probes bound this end-to-end ratio.
//   - BenchmarkSweepExtendReplay: extending an already-captured
//     exploration to five new platform points — the warm `-replay-cache`
//     scenario — against five full executions.
//   - BenchmarkSweepBestComboPlatforms: the co-design question itself —
//     the methodology's recommended (best-energy) combination evaluated
//     across five candidate platforms in one multi-config replay of its
//     captured stream, against five full executions of the application.
//     This is the per-point "N-platform sweep via replay instead of N
//     executions" ratio; the recommended combinations are array/chunked
//     DDTs whose streams replay far faster than they execute.
//
// All replayed vectors are bit-identical to live simulation (pinned by
// the replay-equivalence property tests), so every speedup here is free
// of accuracy loss.

// sweepBenchPlatforms returns the five candidate platforms the
// benchmarks evaluate: the default set minus the embedded reference the
// capture runs on.
func sweepBenchPlatforms() []sweep.PlatformPoint {
	pts := sweep.DefaultPlatforms()
	return []sweep.PlatformPoint{pts[0], pts[2], pts[3], pts[4], pts[5]}
}

func BenchmarkSweepReplayVsExecute(b *testing.B) {
	const packets = 1200
	app := route.App{}
	platforms := sweep.DefaultPlatforms()[:5]

	for i := 0; i < b.N; i++ {
		// Baseline: N independent full executions of the methodology,
		// one per platform, exactly as a sweep ran before capture/replay.
		t0 := time.Now()
		for _, pp := range platforms {
			cfg := pp.Config
			m := core.Methodology{App: app, Opts: explore.Options{TracePackets: packets, Platform: &cfg}}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
		execute := time.Since(t0)

		// Replay: the sweep shares one cache, captures on the first
		// platform and serves the rest from the warm multi-replay pass.
		t1 := time.Now()
		results, err := sweep.Run(app, platforms, explore.Options{TracePackets: packets})
		if err != nil {
			b.Fatal(err)
		}
		replay := time.Since(t1)

		warmed := 0
		for _, r := range results {
			warmed += r.Warmed
		}
		b.ReportMetric(float64(execute.Milliseconds()), "execute-ms")
		b.ReportMetric(float64(replay.Milliseconds()), "replay-ms")
		b.ReportMetric(float64(execute)/float64(replay), "speedup-x")
		b.ReportMetric(float64(warmed), "warmed-evals")
	}
}

func BenchmarkSweepExtendReplay(b *testing.B) {
	const packets = 1200
	app := route.App{}
	newPts := sweepBenchPlatforms()

	for i := 0; i < b.N; i++ {
		// Prior exploration (untimed): the methodology that captured the
		// streams — the state a sweep or a `-replay-cache` file leaves
		// behind.
		cache := explore.NewCache()
		base := explore.Options{TracePackets: packets, Cache: cache}
		if _, err := sweep.Run(app, sweep.DefaultPlatforms()[1:2], base); err != nil {
			b.Fatal(err)
		}

		t0 := time.Now()
		if _, err := sweep.Run(app, newPts, base); err != nil {
			b.Fatal(err)
		}
		replay := time.Since(t0)

		t1 := time.Now()
		for _, pp := range newPts {
			cfg := pp.Config
			m := core.Methodology{App: app, Opts: explore.Options{TracePackets: packets, Platform: &cfg}}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
		execute := time.Since(t1)

		b.ReportMetric(float64(execute.Milliseconds()), "execute-ms")
		b.ReportMetric(float64(replay.Milliseconds()), "replay-ms")
		b.ReportMetric(float64(execute)/float64(replay), "speedup-x")
	}
}

func BenchmarkSweepBestComboPlatforms(b *testing.B) {
	const packets = 4000
	app := route.App{}

	// The exploration that recommends the combination and, as a side
	// effect of capture, leaves its access stream in the cache (untimed).
	cache := explore.NewCache()
	opts := explore.Options{TracePackets: packets, Cache: cache, CaptureStreams: true}
	eng := explore.NewEngine(app, opts)
	rep, err := (core.Methodology{App: app, Opts: opts, Engine: eng}).Run()
	if err != nil {
		b.Fatal(err)
	}
	best := rep.Step1.Survivors[0].Assign
	for _, sv := range rep.Step1.Survivors {
		if sv.Label() == rep.BestEnergy.Label {
			best = sv.Assign
		}
	}
	pts := sweepBenchPlatforms()
	cfgs := make([]memsim.Config, len(pts))
	for i, pp := range pts {
		cfgs[i] = pp.Config
	}

	// Both phases are a few milliseconds, so each iteration takes the
	// best of three runs after a GC to keep single-shot (-benchtime=1x)
	// results out of the allocator's noise.
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var replay, execute time.Duration
		var vecs []metrics.Vector
		for rep3 := 0; rep3 < 3; rep3++ {
			t0 := time.Now()
			v, err := eng.EvaluatePlatforms(context.Background(), rep.Reference, best, cfgs)
			if err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); replay == 0 || d < replay {
				replay = d
			}
			vecs = v
		}
		for rep3 := 0; rep3 < 3; rep3++ {
			t1 := time.Now()
			for k := range cfgs {
				c := cfgs[k]
				r, err := explore.Simulate(app, rep.Reference, best, explore.Options{TracePackets: packets, Platform: &c})
				if err != nil {
					b.Fatal(err)
				}
				if r.Vec != vecs[k] {
					b.Fatalf("platform %d: replay %v != live %v", k, vecs[k], r.Vec)
				}
			}
			if d := time.Since(t1); execute == 0 || d < execute {
				execute = d
			}
		}

		b.ReportMetric(float64(execute.Microseconds())/1000, "execute-ms")
		b.ReportMetric(float64(replay.Microseconds())/1000, "replay-ms")
		b.ReportMetric(float64(execute)/float64(replay), "speedup-x")
	}
}
