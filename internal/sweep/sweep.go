// Package sweep extends the methodology along the axis the paper holds
// fixed: the platform. The paper assumes "that the embedded platform is
// already designed" and tunes DDTs to it; sweep runs the full 3-step
// methodology under several memory-hierarchy designs and reports how the
// recommended DDT combinations move — the co-design question a platform
// architect would ask next.
package sweep

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/pareto"
	"repro/internal/report"
)

// PlatformPoint is one candidate platform design.
type PlatformPoint struct {
	Name   string
	Config memsim.Config
}

// DefaultPlatforms spans the embedded-to-desktop range around the
// reproduction's default 8K/128K hierarchy.
func DefaultPlatforms() []PlatformPoint {
	mk := func(name string, l1, l2 uint32) PlatformPoint {
		cfg := memsim.DefaultConfig()
		cfg.L1.SizeBytes = l1
		cfg.L2.SizeBytes = l2
		return PlatformPoint{Name: name, Config: cfg}
	}
	return []PlatformPoint{
		mk("tiny-4K-64K", 4<<10, 64<<10),
		mk("embedded-8K-128K", 8<<10, 128<<10),
		mk("midrange-32K-512K", 32<<10, 512<<10),
	}
}

// Result is the methodology outcome under one platform.
type Result struct {
	Platform   PlatformPoint
	Report     *core.Report
	BestEnergy pareto.Point // best-energy point of the reference front
	BestTime   pareto.Point
}

// Run executes the full methodology for app under every platform point.
// opts.Platform is overridden per point; everything else applies as is.
func Run(app apps.App, platforms []PlatformPoint, opts explore.Options) ([]Result, error) {
	if len(platforms) == 0 {
		return nil, fmt.Errorf("sweep: no platform points")
	}
	out := make([]Result, 0, len(platforms))
	for _, pp := range platforms {
		cfg := pp.Config
		o := opts
		o.Platform = &cfg
		rep, err := (core.Methodology{App: app, Opts: o}).Run()
		if err != nil {
			return nil, fmt.Errorf("sweep: %s on %s: %w", app.Name(), pp.Name, err)
		}
		out = append(out, Result{
			Platform:   pp,
			Report:     rep,
			BestEnergy: rep.BestEnergy,
			BestTime:   rep.BestTime,
		})
	}
	return out, nil
}

// Render summarizes a sweep as an aligned table: per platform, the
// recommended combination and its costs, plus the energy saving over the
// original implementation.
func Render(app string, results []Result) string {
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Platform.Name,
			r.BestEnergy.Label,
			metrics.FormatEnergy(r.BestEnergy.Vec.Energy),
			metrics.FormatTime(r.BestEnergy.Vec.Time),
			report.Percent(r.Report.EnergySaving),
			fmt.Sprint(r.Report.ParetoOptimal),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s - optimal DDT combination per platform design\n", app)
	b.WriteString(report.Table(
		[]string{"platform", "best-energy combination", "energy", "time", "saving vs SLL", "pareto set"},
		rows))
	return b.String()
}

// Shifts reports whether the recommended combination changes anywhere
// across the sweep — the observation that makes DDT choice a co-design
// problem rather than a lookup table.
func Shifts(results []Result) bool {
	for i := 1; i < len(results); i++ {
		if results[i].BestEnergy.Label != results[0].BestEnergy.Label {
			return true
		}
	}
	return false
}
