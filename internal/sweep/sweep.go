// Package sweep extends the methodology along the axis the paper holds
// fixed: the platform. The paper assumes "that the embedded platform is
// already designed" and tunes DDTs to it; sweep runs the full 3-step
// methodology under several memory-hierarchy designs and reports how the
// recommended DDT combinations move — the co-design question a platform
// architect would ask next.
package sweep

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/pareto"
	"repro/internal/report"
)

// PlatformPoint is one candidate platform design.
type PlatformPoint struct {
	Name   string
	Config memsim.Config
}

// DefaultPlatforms spans the embedded-to-desktop range around the
// reproduction's default 8K/128K hierarchy, plus line-size and
// associativity variants of the embedded point — cheap to add now that a
// sweep evaluates extra platforms by replaying captured access streams
// instead of re-executing the applications.
func DefaultPlatforms() []PlatformPoint {
	mk := func(name string, l1, l2 uint32) PlatformPoint {
		cfg := memsim.DefaultConfig()
		cfg.L1.SizeBytes = l1
		cfg.L2.SizeBytes = l2
		return PlatformPoint{Name: name, Config: cfg}
	}
	line64 := mk("embedded-64B-lines", 8<<10, 128<<10)
	line64.Config.L1.LineBytes = 64
	line64.Config.L2.LineBytes = 64
	assoc4 := mk("embedded-4way", 8<<10, 128<<10)
	assoc4.Config.L1.Assoc = 4
	assoc4.Config.L2.Assoc = 16
	bigL2 := mk("embedded-8K-256K", 8<<10, 256<<10)
	return []PlatformPoint{
		mk("tiny-4K-64K", 4<<10, 64<<10),
		mk("embedded-8K-128K", 8<<10, 128<<10),
		line64,
		assoc4,
		bigL2,
		mk("midrange-32K-512K", 32<<10, 512<<10),
	}
}

// Result is the methodology outcome under one platform.
type Result struct {
	Platform   PlatformPoint
	Report     *core.Report
	BestEnergy pareto.Point // best-energy point of the reference front
	BestTime   pareto.Point
	// Stats counts how the platform's results were obtained: the first
	// platform executes (and captures), later ones are served from the
	// warm pass (cache hits) or per-job replays.
	Stats explore.EngineStats
	// Warmed counts the (stream, platform) multi-replay evaluations the
	// warm pass performed after this platform's methodology to pre-
	// compute the remaining platforms' results.
	Warmed int
}

// Run executes the full methodology for app under every platform point.
// opts.Platform is overridden per point; everything else applies as is.
//
// Unless caching is disabled, the platform points share one simulation
// cache with access-stream capture enabled: the first methodology
// executes every simulation once and records its platform-invariant
// word-access stream, and every later platform point is evaluated by
// replaying those streams — identical results (the replay-equivalence
// property tests pin counts, cycles and energy bit-for-bit) at a
// fraction of the execution cost. The warm pass groups the platform
// points by cache line size (platform.LineFamilies) and costs each
// family with a single all-geometry probe pass per stream
// (memsim.GeomSim), leaving per-identity reuse profiles in the cache —
// a later sweep over covered geometries is pure arithmetic, zero probe
// passes. Profiling runs are likewise shared across platforms, since
// per-role access attribution is platform-invariant.
//
// With opts.Compose the sweep runs on compositional capture instead:
// per-role sub-streams (platform- AND combination-invariant) replace
// whole-run streams, so the first platform's methodology already runs
// mostly on composed replays, later platforms compose from the same
// ~10·K lanes, and the warm pass is unnecessary. Results then use the
// per-role-arena address model throughout.
func Run(app apps.App, platforms []PlatformPoint, opts explore.Options) ([]Result, error) {
	if len(platforms) == 0 {
		return nil, fmt.Errorf("sweep: no platform points")
	}
	if !opts.DisableCache {
		if opts.Cache == nil {
			opts.Cache = explore.NewCache()
		}
		// Composition subsumes whole-run capture: lanes serve platform
		// changes and combination changes alike. BoundPrune implies
		// composition (the engine promotes it), so it counts too.
		opts.CaptureStreams = !opts.Compose && !opts.BoundPrune
	}
	out := make([]Result, 0, len(platforms))
	for i, pp := range platforms {
		cfg := pp.Config
		o := opts
		o.Platform = &cfg
		res := Result{Platform: pp}
		if o.CaptureStreams {
			// Warm pass: every stream captured so far — by earlier
			// platforms of this sweep, or by whatever exploration
			// previously filled the shared cache — is decoded once and
			// multi-replayed across this and all remaining platforms, so
			// the methodologies run almost entirely on exact cache hits.
			pending := make([]memsim.Config, 0, len(platforms)-i)
			for _, np := range platforms[i:] {
				pending = append(pending, np.Config)
			}
			res.Warmed = explore.ReplayPlatforms(opts.Cache, pending)
		}
		eng := explore.NewEngine(app, o)
		rep, err := (core.Methodology{App: app, Opts: o, Engine: eng}).Run()
		if err != nil {
			return nil, fmt.Errorf("sweep: %s on %s: %w", app.Name(), pp.Name, err)
		}
		res.Report = rep
		res.BestEnergy = rep.BestEnergy
		res.BestTime = rep.BestTime
		res.Stats = eng.Stats()
		out = append(out, res)
	}
	return out, nil
}

// Render summarizes a sweep as an aligned table: per platform, the
// recommended combination and its costs, plus the energy saving over the
// original implementation.
func Render(app string, results []Result) string {
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Platform.Name,
			r.BestEnergy.Label,
			metrics.FormatEnergy(r.BestEnergy.Vec.Energy),
			metrics.FormatTime(r.BestEnergy.Vec.Time),
			report.Percent(r.Report.EnergySaving),
			fmt.Sprint(r.Report.ParetoOptimal),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s - optimal DDT combination per platform design\n", app)
	b.WriteString(report.Table(
		[]string{"platform", "best-energy combination", "energy", "time", "saving vs SLL", "pareto set"},
		rows))
	return b.String()
}

// Shifts reports whether the recommended combination changes anywhere
// across the sweep — the observation that makes DDT choice a co-design
// problem rather than a lookup table.
func Shifts(results []Result) bool {
	for i := 1; i < len(results); i++ {
		if results[i].BestEnergy.Label != results[0].BestEnergy.Label {
			return true
		}
	}
	return false
}
