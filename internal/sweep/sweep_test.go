package sweep_test

import (
	"strings"
	"testing"

	"repro/internal/apps/urlsw"
	"repro/internal/explore"
	"repro/internal/memsim"
	"repro/internal/sweep"
)

func TestDefaultPlatforms(t *testing.T) {
	pts := sweep.DefaultPlatforms()
	if len(pts) < 3 {
		t.Fatalf("%d platform points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Config.L1.SizeBytes <= pts[i-1].Config.L1.SizeBytes {
			t.Errorf("platform points not ordered by L1 size")
		}
	}
}

func TestRunAndRender(t *testing.T) {
	platforms := sweep.DefaultPlatforms()[:2]
	results, err := sweep.Run(urlsw.App{}, platforms, explore.Options{TracePackets: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Report == nil || r.BestEnergy.Label == "" {
			t.Fatalf("result %d incomplete: %+v", i, r)
		}
		if r.Platform.Name != platforms[i].Name {
			t.Errorf("result %d platform order broken", i)
		}
		if r.Report.EnergySaving < 0 {
			t.Errorf("%s: refinement lost to original", r.Platform.Name)
		}
	}
	out := sweep.Render("URL", results)
	for _, frag := range []string{"URL", platforms[0].Name, platforms[1].Name, "saving vs SLL"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// Shifts must at least not crash and be consistent with the labels.
	shifted := sweep.Shifts(results)
	want := results[0].BestEnergy.Label != results[1].BestEnergy.Label
	if shifted != want {
		t.Errorf("Shifts = %v, labels %q vs %q", shifted,
			results[0].BestEnergy.Label, results[1].BestEnergy.Label)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := sweep.Run(urlsw.App{}, nil, explore.Options{}); err == nil {
		t.Fatal("empty platform list accepted")
	}
}

func TestPerPlatformConfigsApplied(t *testing.T) {
	// A sweep must actually run each methodology under its own config:
	// energy per access differs, so reference-front energies must differ.
	small := sweep.PlatformPoint{Name: "small", Config: memsim.DefaultConfig()}
	bigCfg := memsim.DefaultConfig()
	bigCfg.L1.SizeBytes *= 8
	big := sweep.PlatformPoint{Name: "big", Config: bigCfg}
	results, err := sweep.Run(urlsw.App{}, []sweep.PlatformPoint{small, big}, explore.Options{TracePackets: 300})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].BestEnergy.Vec == results[1].BestEnergy.Vec {
		t.Error("both platforms produced identical best vectors; config not applied")
	}
}
