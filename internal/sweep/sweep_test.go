package sweep_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps/urlsw"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/memsim"
	"repro/internal/sweep"
)

func TestDefaultPlatforms(t *testing.T) {
	pts := sweep.DefaultPlatforms()
	if len(pts) < 5 {
		t.Fatalf("%d platform points, want >= 5 (size, line and associativity variants)", len(pts))
	}
	names := make(map[string]bool)
	configs := make(map[string]bool)
	var lineVariant, assocVariant bool
	base := memsim.DefaultConfig()
	for _, p := range pts {
		if names[p.Name] {
			t.Errorf("duplicate platform name %q", p.Name)
		}
		names[p.Name] = true
		key := fmt.Sprintf("%+v", p.Config)
		if configs[key] {
			t.Errorf("duplicate platform config %q", p.Name)
		}
		configs[key] = true
		if p.Config.L1.LineBytes != base.L1.LineBytes {
			lineVariant = true
		}
		if p.Config.L1.Assoc != base.L1.Assoc {
			assocVariant = true
		}
	}
	if !lineVariant {
		t.Error("no line-size variant in the default platform set")
	}
	if !assocVariant {
		t.Error("no associativity variant in the default platform set")
	}
}

func TestRunAndRender(t *testing.T) {
	platforms := sweep.DefaultPlatforms()[:2]
	results, err := sweep.Run(urlsw.App{}, platforms, explore.Options{TracePackets: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Report == nil || r.BestEnergy.Label == "" {
			t.Fatalf("result %d incomplete: %+v", i, r)
		}
		if r.Platform.Name != platforms[i].Name {
			t.Errorf("result %d platform order broken", i)
		}
		if r.Report.EnergySaving < 0 {
			t.Errorf("%s: refinement lost to original", r.Platform.Name)
		}
	}
	out := sweep.Render("URL", results)
	for _, frag := range []string{"URL", platforms[0].Name, platforms[1].Name, "saving vs SLL"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// Shifts must at least not crash and be consistent with the labels.
	shifted := sweep.Shifts(results)
	want := results[0].BestEnergy.Label != results[1].BestEnergy.Label
	if shifted != want {
		t.Errorf("Shifts = %v, labels %q vs %q", shifted,
			results[0].BestEnergy.Label, results[1].BestEnergy.Label)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := sweep.Run(urlsw.App{}, nil, explore.Options{}); err == nil {
		t.Fatal("empty platform list accepted")
	}
}

// TestRunEnlargedSetReplays covers sweep.Run over the full default
// platform set: the first platform executes and captures, every later
// platform is served (almost) entirely by stream replay, and the
// recommendations match what independent full executions produce.
func TestRunEnlargedSetReplays(t *testing.T) {
	app := urlsw.App{}
	platforms := sweep.DefaultPlatforms()
	results, err := sweep.Run(app, platforms, explore.Options{TracePackets: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(platforms) {
		t.Fatalf("%d results for %d platforms", len(results), len(platforms))
	}
	if results[0].Stats.Replayed != 0 {
		t.Errorf("first platform replayed %d simulations with an empty cache", results[0].Stats.Replayed)
	}
	for i, r := range results {
		if r.Report == nil || r.BestEnergy.Label == "" {
			t.Fatalf("platform %s: incomplete result", platforms[i].Name)
		}
		if i == 0 {
			if r.Warmed != 0 {
				t.Errorf("cold sweep warmed %d evaluations before any capture", r.Warmed)
			}
			continue
		}
		if i == 1 && r.Warmed == 0 {
			t.Error("no warm pass after the capture platform")
		}
		if r.Stats.Replayed+r.Stats.CacheHits == 0 {
			t.Errorf("platform %s: nothing served by replay or warm cache", platforms[i].Name)
		}
		if r.Stats.Simulated > results[0].Stats.Simulated/4 {
			t.Errorf("platform %s: executed %d simulations (first platform: %d); replay barely used",
				platforms[i].Name, r.Stats.Simulated, results[0].Stats.Simulated)
		}
	}

	// The replayed sweep must recommend exactly what independent full
	// executions recommend: replay is bit-exact, so best points match.
	for i, pp := range platforms {
		cfg := pp.Config
		rep, err := (core.Methodology{App: app, Opts: explore.Options{TracePackets: 300, Platform: &cfg}}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.BestEnergy.Label != results[i].BestEnergy.Label || rep.BestEnergy.Vec != results[i].BestEnergy.Vec {
			t.Errorf("platform %s: replayed best-energy %s %v != executed %s %v", pp.Name,
				results[i].BestEnergy.Label, results[i].BestEnergy.Vec, rep.BestEnergy.Label, rep.BestEnergy.Vec)
		}
		if rep.EnergySaving != results[i].Report.EnergySaving {
			t.Errorf("platform %s: energy saving %v != %v", pp.Name, results[i].Report.EnergySaving, rep.EnergySaving)
		}
	}
}

func TestPerPlatformConfigsApplied(t *testing.T) {
	// A sweep must actually run each methodology under its own config:
	// energy per access differs, so reference-front energies must differ.
	small := sweep.PlatformPoint{Name: "small", Config: memsim.DefaultConfig()}
	bigCfg := memsim.DefaultConfig()
	bigCfg.L1.SizeBytes *= 8
	big := sweep.PlatformPoint{Name: "big", Config: bigCfg}
	results, err := sweep.Run(urlsw.App{}, []sweep.PlatformPoint{small, big}, explore.Options{TracePackets: 300})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].BestEnergy.Vec == results[1].BestEnergy.Vec {
		t.Error("both platforms produced identical best vectors; config not applied")
	}
}
