package distrib

// TLS for campaigns that leave localhost. The trust model is a
// two-command cluster, not a PKI: the coordinator serves a (typically
// self-signed) certificate, and every worker pins exactly that
// certificate — byte equality on the DER encoding — instead of
// walking CA chains and hostname rules that a lab deployment has no
// authority to issue. Pinning composes with the shared-token hello
// check: TLS authenticates the coordinator to workers and encrypts
// the stream, the token authenticates workers to the coordinator.

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"
)

// ServerTLS loads the coordinator's certificate/key pair for -serve.
func ServerTLS(certFile, keyFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("distrib: loading TLS key pair: %w", err)
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
	}, nil
}

// ClientTLS builds a worker config that accepts exactly the
// certificate in certFile and nothing else. InsecureSkipVerify only
// disables the chain/hostname verifier; VerifyPeerCertificate replaces
// it with something strictly stronger for this deployment model —
// a full-certificate pin.
func ClientTLS(certFile string) (*tls.Config, error) {
	pemBytes, err := os.ReadFile(certFile)
	if err != nil {
		return nil, fmt.Errorf("distrib: reading pinned certificate: %w", err)
	}
	block, _ := pem.Decode(pemBytes)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, fmt.Errorf("distrib: %s does not hold a PEM certificate", certFile)
	}
	if _, err := x509.ParseCertificate(block.Bytes); err != nil {
		return nil, fmt.Errorf("distrib: parsing pinned certificate: %w", err)
	}
	pinned := block.Bytes
	return &tls.Config{
		InsecureSkipVerify: true, // replaced by the pin below, not absent
		MinVersion:         tls.VersionTLS13,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			if len(rawCerts) > 0 && bytes.Equal(rawCerts[0], pinned) {
				return nil
			}
			return fmt.Errorf("distrib: coordinator certificate does not match the pinned certificate")
		},
	}, nil
}

// GenerateCert writes a fresh self-signed ECDSA P-256 certificate and
// key to certFile and keyFile, valid for the given hosts (DNS names or
// IP literals; nil defaults to localhost). The key file is written
// 0600. This is the whole certificate authority a pinned deployment
// needs: generate once on the coordinator host, copy the certificate
// (not the key) to each worker.
func GenerateCert(certFile, keyFile string, hosts []string) error {
	if len(hosts) == 0 {
		hosts = []string{"localhost", "127.0.0.1", "::1"}
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return fmt.Errorf("distrib: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return fmt.Errorf("distrib: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "ddt-explore coordinator"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return fmt.Errorf("distrib: creating certificate: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return fmt.Errorf("distrib: marshaling key: %w", err)
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(certFile, certPEM, 0o644); err != nil {
		return fmt.Errorf("distrib: writing certificate: %w", err)
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		return fmt.Errorf("distrib: writing key: %w", err)
	}
	return nil
}
