package distrib

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/explore"
)

// WorkerOptions tunes a worker. Dial is required; everything else has
// defaults.
type WorkerOptions struct {
	// ID names this worker in coordinator stats and logs.
	ID string
	// Dial opens a connection to the coordinator. Tests wrap the
	// returned conn with faultio.Conn scripts; the CLI dials TCP.
	Dial func(ctx context.Context) (net.Conn, error)
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
	// BackoffMin / BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 50ms / 5s).
	BackoffMin, BackoffMax time.Duration
	// ReadTimeout bounds each wait for a coordinator response
	// (default 30s): a hung coordinator parts the session and the
	// worker reconnects with backoff.
	ReadTimeout time.Duration
	// JobDelay inserts a pause after each resolved job — test pacing,
	// so fault scripts land mid-shard deterministically.
	JobDelay time.Duration
	// Token authenticates this worker to a coordinator running with a
	// shared secret (empty: unauthenticated).
	Token string
	// MutateOutcome, when set, is applied to every outcome before it
	// is reported — the chaos harness's lying-worker hook, modeling a
	// worker whose computation (bad build, flaky RAM, hostile peer) is
	// wrong while its transport is perfectly healthy. Production
	// workers leave it nil.
	MutateOutcome func(*explore.JobOutcome)
}

func (o WorkerOptions) backoffMin() time.Duration {
	if o.BackoffMin <= 0 {
		return 50 * time.Millisecond
	}
	return o.BackoffMin
}

func (o WorkerOptions) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return 5 * time.Second
	}
	return o.BackoffMax
}

func (o WorkerOptions) readTimeout() time.Duration {
	if o.ReadTimeout <= 0 {
		return 30 * time.Second
	}
	return o.ReadTimeout
}

// RunWorker joins a coordinator's campaign and resolves leased shards
// through eng until the campaign completes (nil), the context dies, or
// the coordinator permanently rejects this worker (campaign mismatch
// or failed campaign). Transport faults — refused or torn connections,
// timeouts, mid-frame corruption — are never fatal: the session drops
// and the worker redials with jittered exponential backoff, resuming
// mid-campaign. The backoff resets whenever a session makes progress,
// so a transient fault costs one short pause, not an accumulated
// penalty.
func RunWorker(ctx context.Context, eng *explore.Engine, o WorkerOptions) error {
	if o.Dial == nil {
		return fmt.Errorf("distrib: worker %q has no dialer", o.ID)
	}
	logf := func(format string, args ...any) {
		if o.Logf != nil {
			o.Logf(format, args...)
		}
	}
	cursor := explore.NewDeltaCursor()
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := o.Dial(ctx)
		if err != nil {
			logf("worker %s: dial: %v", o.ID, err)
			attempt++
			if err := backoff(ctx, o, attempt); err != nil {
				return err
			}
			continue
		}
		finished, progressed, permanent, err := session(ctx, eng, o, conn, cursor)
		conn.Close()
		if permanent != nil {
			return permanent
		}
		if finished {
			logf("worker %s: campaign complete", o.ID)
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err != nil {
			logf("worker %s: session: %v", o.ID, err)
		}
		if progressed {
			attempt = 0
		} else {
			attempt++
		}
		if err := backoff(ctx, o, attempt); err != nil {
			return err
		}
	}
}

// backoff sleeps the jittered exponential delay for the given attempt
// (attempt 0: no sleep), or returns early when ctx dies.
func backoff(ctx context.Context, o WorkerOptions, attempt int) error {
	if attempt <= 0 {
		return ctx.Err()
	}
	d := o.backoffMin() << (attempt - 1)
	if maxd := o.backoffMax(); d <= 0 || d > maxd {
		d = maxd
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// session speaks one connection's worth of protocol: join, then lease/
// resolve/report until something breaks. Returns finished when the
// campaign completed, progressed when at least one response landed
// (resets backoff), permanent for refusals that must not be retried,
// and err for the transport fault that ended the session.
func session(ctx context.Context, eng *explore.Engine, o WorkerOptions, conn net.Conn, cursor *explore.DeltaCursor) (finished, progressed bool, permanent, err error) {
	br := bufio.NewReader(conn)
	read := func() (byte, []byte, error) {
		conn.SetReadDeadline(time.Now().Add(o.readTimeout()))
		return readFrame(br)
	}

	if err := writeMsg(conn, msgHello, hello{Worker: o.ID, Proto: ProtoVersion, Campaign: eng.CampaignID(), Token: o.Token}); err != nil {
		return false, false, nil, err
	}
	id, payload, err := read()
	if err != nil {
		return false, false, nil, err
	}
	switch id {
	case msgWelcome:
		var w welcome
		if err := decodeMsg(id, payload, &w); err != nil {
			return false, false, nil, err
		}
		progressed = true
	case msgReject:
		var rj reject
		if err := decodeMsg(id, payload, &rj); err != nil {
			return false, false, nil, err
		}
		return false, false, fmt.Errorf("%w: %s", errRejected, rj.Reason), nil
	case msgDone:
		return true, true, nil, nil
	default:
		return false, false, nil, fmt.Errorf("distrib: unexpected %s to hello", msgName(id))
	}

	for {
		if cerr := ctx.Err(); cerr != nil {
			return false, progressed, nil, cerr
		}
		if err := writeMsg(conn, msgLeaseReq, leaseReq{Worker: o.ID}); err != nil {
			return false, progressed, nil, err
		}
		id, payload, err := read()
		if err != nil {
			return false, progressed, nil, err
		}
		switch id {
		case msgLease:
			var l lease
			if err := decodeMsg(id, payload, &l); err != nil {
				return false, progressed, nil, err
			}
			rm := resolveShard(ctx, eng, o, l, cursor)
			if err := writeMsg(conn, msgResults, rm); err != nil {
				return false, progressed, nil, err
			}
			id, payload, err = read()
			if err != nil {
				return false, progressed, nil, err
			}
			switch id {
			case msgAck:
				var a ack
				if err := decodeMsg(id, payload, &a); err != nil {
					return false, progressed, nil, err
				}
				progressed = true
			case msgReject:
				var rj reject
				if err := decodeMsg(id, payload, &rj); err != nil {
					return false, progressed, nil, err
				}
				return false, progressed, fmt.Errorf("%w: %s", errRejected, rj.Reason), nil
			default:
				return false, progressed, nil, fmt.Errorf("distrib: unexpected %s to results", msgName(id))
			}
		case msgWait:
			var wt wait
			if err := decodeMsg(id, payload, &wt); err != nil {
				return false, progressed, nil, err
			}
			progressed = true
			t := time.NewTimer(time.Duration(wt.Millis) * time.Millisecond)
			select {
			case <-ctx.Done():
				t.Stop()
				return false, progressed, nil, ctx.Err()
			case <-t.C:
			}
		case msgDone:
			return true, true, nil, nil
		case msgReject:
			var rj reject
			if err := decodeMsg(id, payload, &rj); err != nil {
				return false, progressed, nil, err
			}
			return false, progressed, fmt.Errorf("%w: %s", errRejected, rj.Reason), nil
		default:
			return false, progressed, nil, fmt.Errorf("distrib: unexpected %s to leasereq", msgName(id))
		}
	}
}

// resolveShard resolves every job of a lease through the worker's
// engine — cache hits, bound prunes against the broadcast front,
// compositions, replays, live simulations — and packages the outcomes
// plus the compositional cache entries captured since the last export.
func resolveShard(ctx context.Context, eng *explore.Engine, o WorkerOptions, l lease, cursor *explore.DeltaCursor) resultsMsg {
	rg := eng.NewRemoteGuard(l.Front)
	rm := resultsMsg{Worker: o.ID, LeaseID: l.ID}
	for _, spec := range l.Jobs {
		if ctx.Err() != nil {
			break // report what settled; the rest re-leases
		}
		out := eng.ResolveJob(spec, rg)
		if o.MutateOutcome != nil {
			o.MutateOutcome(&out)
		}
		rm.Outcomes = append(rm.Outcomes, out)
		if o.JobDelay > 0 {
			time.Sleep(o.JobDelay)
		}
	}
	if c := eng.Cache(); c != nil {
		rm.Delta = c.ExportDelta(cursor)
	}
	return rm
}
