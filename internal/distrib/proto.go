// Package distrib distributes an exploration campaign across
// processes: a coordinator owns the deterministic job space and hands
// out leased shards of combinations over a length-prefixed, CRC-framed
// TCP protocol; workers resolve the shards through their own engines
// and stream back results plus content-addressed cache entries.
//
// The design premise is the same one that makes single-process
// campaigns crash-safe (PR 8): the job space is deterministic and
// every settled job is durable in the cache under an identity key. The
// distributed layer therefore needs no consensus and no durable queue
// — leases are soft state. A worker that dies mid-shard simply lets
// its lease expire and the shard is re-handed to someone else; a
// result that arrives twice settles the same identity with the same
// bytes (first-settled wins and the duplicate merges as a no-op); a
// coordinator that dies restarts from its checkpointed cache, settles
// everything the dead campaign already proved in a warm pre-pass, and
// leases only the remainder. Faults — torn frames, dead peers, hung
// connections — surface as connection errors on one side and lease
// expiry on the other, and both sides recover independently.
package distrib

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/explore"
	"repro/internal/pareto"
)

// ProtoVersion gates hello/welcome: both sides must speak the same
// frame and message vocabulary. Version 2 added the authenticated
// hello (shared token) and the verification/quarantine admission
// rules.
const ProtoVersion = 2

// crcTable is the Castagnoli (CRC32C) polynomial table — the same
// checksum the sectioned cache format uses, for the same reason: a
// torn or corrupted frame must be detected, never half-applied.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderLen is the framed message header size: id, payload
// length, and the CRC32C that guards them.
const frameHeaderLen = 1 + 8 + 4

// maxFrameBytes bounds a frame a peer will accept. Shard results with
// compositional deltas are the largest messages; a corrupted length
// that passes the header CRC is astronomically unlikely, but the bound
// keeps a hostile or broken peer from forcing a huge allocation.
const maxFrameBytes = 1 << 31

// maxHelloBytes bounds the first frame of a connection. Until the
// hello is checked (protocol, campaign, token), the peer is untrusted
// and must not be able to make the coordinator allocate gigabytes; a
// legitimate hello is a few hundred bytes.
const maxHelloBytes = 1 << 16

// Message ids. The protocol is strict request/response per worker
// connection: the worker speaks first (hello), then alternates
// requests (leaseReq, results) with coordinator responses (welcome,
// lease, wait, ack, done, reject).
const (
	msgHello    byte = 1 // worker → coordinator: join a campaign
	msgWelcome  byte = 2 // coordinator → worker: admitted
	msgReject   byte = 3 // coordinator → worker: permanent refusal
	msgLeaseReq byte = 4 // worker → coordinator: give me a shard
	msgLease    byte = 5 // coordinator → worker: a leased shard
	msgWait     byte = 6 // coordinator → worker: nothing leasable now
	msgDone     byte = 7 // coordinator → worker: campaign complete
	msgResults  byte = 8 // worker → coordinator: shard outcomes + delta
	msgAck      byte = 9 // coordinator → worker: results merged
)

// msgName renders a message id for errors.
func msgName(id byte) string {
	switch id {
	case msgHello:
		return "hello"
	case msgWelcome:
		return "welcome"
	case msgReject:
		return "reject"
	case msgLeaseReq:
		return "leasereq"
	case msgLease:
		return "lease"
	case msgWait:
		return "wait"
	case msgDone:
		return "done"
	case msgResults:
		return "results"
	case msgAck:
		return "ack"
	default:
		return fmt.Sprintf("msg(%d)", id)
	}
}

// hello is the worker's opening message. Campaign must equal the
// coordinator engine's CampaignID — the proof both engines resolve the
// identical deterministic job space.
type hello struct {
	Worker   string
	Proto    int
	Campaign string
	// Token authenticates the worker when the coordinator requires a
	// shared secret (Options.Token). Compared in constant time and
	// never logged. Empty when the deployment runs unauthenticated
	// (localhost, tests).
	Token string
}

// welcome admits a worker and seeds its front.
type welcome struct {
	Campaign string
	Front    []pareto.Point
}

// reject permanently refuses a worker (campaign mismatch, protocol
// mismatch, failed campaign). Workers must not retry after a reject.
type reject struct {
	Reason string
}

// leaseReq asks for the next shard.
type leaseReq struct {
	Worker string
}

// lease grants a shard of jobs until the deadline. Front is the
// coordinator's current exact survivor front — the worker seeds its
// shard guard with it so remote bound pruning stays effective.
type lease struct {
	ID         uint64
	Step       int
	Jobs       []explore.JobSpec
	TTLMillis  int64
	Front      []pareto.Point
	Reassigned bool
}

// wait tells the worker nothing is leasable right now (every pending
// job is on some other worker's lease): re-request after the delay.
type wait struct {
	Millis int64
}

// done tells the worker the campaign is complete.
type done struct{}

// resultsMsg returns a shard's outcomes plus the compositional cache
// entries the worker captured since its last report.
type resultsMsg struct {
	Worker   string
	LeaseID  uint64
	Outcomes []explore.JobOutcome
	Delta    *explore.CacheDelta
}

// ack confirms a results merge and refreshes the worker's front.
type ack struct {
	Front []pareto.Point
}

// writeMsg frames and writes one gob-encoded message: header (id,
// length, header CRC), payload, payload CRC — the cache file's section
// framing, applied per message.
func writeMsg(w io.Writer, id byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("distrib: encoding %s: %w", msgName(id), err)
	}
	payload := buf.Bytes()
	var hdr [frameHeaderLen]byte
	hdr[0] = id
	binary.LittleEndian.PutUint64(hdr[1:9], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(hdr[:9], crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(tr[:])
	return err
}

// readFrame reads and verifies one frame, returning its id and
// payload. Any integrity failure — short read, header CRC, payload
// CRC — is an error; the connection is unrecoverable past it (framing
// has lost sync) and callers drop it, which is exactly the recovery
// model: the sender's lease expires and the shard is re-leased.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	return readFrameN(r, maxFrameBytes)
}

// readFrameN is readFrame with a caller-chosen payload bound — the
// coordinator caps the first, pre-authentication frame of a connection
// at maxHelloBytes.
func readFrameN(r *bufio.Reader, maxLen int64) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(hdr[:9], crcTable) != binary.LittleEndian.Uint32(hdr[9:13]) {
		return 0, nil, fmt.Errorf("distrib: frame header CRC mismatch")
	}
	id := hdr[0]
	ln := int64(binary.LittleEndian.Uint64(hdr[1:9]))
	if ln < 0 || ln > maxLen {
		return 0, nil, fmt.Errorf("distrib: frame length %d out of range", ln)
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	var tr [4]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(tr[:]) {
		return 0, nil, fmt.Errorf("distrib: %s payload CRC mismatch", msgName(id))
	}
	return id, payload, nil
}

// decodeMsg gob-decodes a frame payload into v.
func decodeMsg(id byte, payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("distrib: decoding %s: %w", msgName(id), err)
	}
	return nil
}
