package distrib

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/apps/netapps"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/faultio"
)

func app(t *testing.T, name string) apps.App {
	t.Helper()
	a, err := netapps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// survivorLabels renders a step-1 survivor set as its sorted label set
// — the membership the distributed path must reproduce bit-identically.
func survivorLabels(rs []explore.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Label()
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// faultScript wraps a worker's nth (1-based) connection with injected
// faults; connections it returns unchanged behave normally.
type faultScript func(c *faultio.Conn, attempt int) net.Conn

// campaignHarness runs a coordinator plus N in-process workers over
// real localhost TCP, with optional per-worker fault scripts and
// kill-after durations, and returns once the campaign completes.
type campaignHarness struct {
	app       apps.App
	opts      explore.Options
	copts     Options
	workers   int
	scripts   map[int]faultScript
	killTime  map[int]time.Duration // cancel the worker's context after this
	jobDelay  time.Duration
	jobDelays map[int]time.Duration             // per-worker override of jobDelay
	tokens    map[int]string                    // per-worker hello token
	mutate    map[int]func(*explore.JobOutcome) // per-worker result corruption (lying worker)
	connWrap  map[int]func(net.Conn) net.Conn   // applied to dialed conns after scripts (TLS, chaos plans)
	lnWrap    func(net.Listener) net.Listener   // wraps the coordinator listener (TLS)
	onExit    func(worker int, err error)       // observes each worker's RunWorker result
}

func (h campaignHarness) run(t *testing.T) (*Coordinator, *explore.Engine) {
	t.Helper()
	ceng := explore.NewEngine(h.app, h.opts)
	coord := NewCoordinator(h.app, ceng, h.copts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveLn := net.Listener(ln)
	if h.lnWrap != nil {
		serveLn = h.lnWrap(serveLn)
	}

	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(context.Background(), serveLn) }()

	var wg sync.WaitGroup
	var releases []func()
	var relMu sync.Mutex
	for i := 0; i < h.workers; i++ {
		weng := explore.NewEngine(h.app, h.opts)
		wctx := context.Background()
		if d, ok := h.killTime[i]; ok {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(wctx, d)
			defer cancel()
		}
		var attempts atomic.Int64
		i := i
		dial := func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			n := int(attempts.Add(1))
			if s := h.scripts[i]; s != nil {
				fc := faultio.NewConn(c)
				out := s(fc, n)
				relMu.Lock()
				releases = append(releases, fc.ReleaseHang)
				relMu.Unlock()
				c = out
			}
			if w := h.connWrap[i]; w != nil {
				c = w(c)
			}
			return c, nil
		}
		delay := h.jobDelay
		if d, ok := h.jobDelays[i]; ok {
			delay = d
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(wctx, weng, WorkerOptions{
				ID:            fmt.Sprintf("w%d", i),
				Dial:          dial,
				BackoffMin:    10 * time.Millisecond,
				BackoffMax:    200 * time.Millisecond,
				ReadTimeout:   5 * time.Second,
				JobDelay:      delay,
				Token:         h.tokens[i],
				MutateOutcome: h.mutate[i],
			})
			if h.onExit != nil {
				h.onExit(i, err)
			}
		}()
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("distributed campaign never completed")
	}
	// Unblock any scripted hang, let polling workers receive done, then
	// close the listener and collect every worker goroutine.
	relMu.Lock()
	for _, r := range releases {
		r()
	}
	relMu.Unlock()
	coord.Drain(20 * time.Second)
	ln.Close()
	wg.Wait()
	return coord, ceng
}

// TestDistributedFrontMatchesSingleProcess is the tentpole pin:
// coordinator plus N workers over injectable localhost connections —
// including workers killed mid-shard, frames torn mid-message, and
// leases expiring into reassignment — always settle a cache whose warm
// rerun yields a survivor front bit-identical in membership to a
// single-process run, on DRR (K=3) and FlowMon at K=5 (the 10^5
// combination space).
func TestDistributedFrontMatchesSingleProcess(t *testing.T) {
	cases := []struct {
		name     string
		app      string
		opts     explore.Options
		copts    Options
		workers  int
		scripts  map[int]faultScript
		killTime map[int]time.Duration
		jobDelay time.Duration
		expired  bool // assert at least one lease expired
	}{
		{
			name:    "DRR-K3/clean",
			app:     "DRR",
			opts:    explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true},
			copts:   Options{ShardSize: 16, LeaseTTL: time.Second},
			workers: 2,
		},
		{
			name:    "DRR-K3/worker-killed-mid-shard",
			app:     "DRR",
			opts:    explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true},
			copts:   Options{ShardSize: 16, LeaseTTL: 300 * time.Millisecond},
			workers: 3,
			scripts: map[int]faultScript{
				2: func(c *faultio.Conn, attempt int) net.Conn {
					if attempt == 1 {
						// The connection dies mid-frame somewhere in the
						// first shard report; the worker's context dies
						// shortly after — a crash, not a goodbye.
						return c.TearWriteAfter(1500, nil)
					}
					return c
				},
			},
			killTime: map[int]time.Duration{2: 600 * time.Millisecond},
			jobDelay: time.Millisecond,
		},
		{
			name:    "DRR-K3/frames-torn-both-directions",
			app:     "DRR",
			opts:    explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true},
			copts:   Options{ShardSize: 16, LeaseTTL: 500 * time.Millisecond},
			workers: 2,
			scripts: map[int]faultScript{
				0: func(c *faultio.Conn, attempt int) net.Conn {
					if attempt == 1 {
						return c.TearWriteAfter(1800, nil)
					}
					return c
				},
				1: func(c *faultio.Conn, attempt int) net.Conn {
					if attempt == 1 {
						// Torn mid-lease on the read side: the worker
						// sees a corrupt or short frame and reconnects.
						return c.TearReadAfter(900, nil)
					}
					return c
				},
			},
			jobDelay: time.Millisecond,
		},
		{
			name:    "DRR-K3/lease-expires-and-reassigns",
			app:     "DRR",
			opts:    explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true},
			copts:   Options{ShardSize: 16, LeaseTTL: 200 * time.Millisecond},
			workers: 2,
			scripts: map[int]faultScript{
				0: func(c *faultio.Conn, attempt int) net.Conn {
					if attempt == 1 {
						// Hang reading the first lease response: the
						// lease is granted coordinator-side but the
						// worker never works it — a partitioned peer.
						return c.HangN(faultio.ConnRead, 2)
					}
					return c
				},
			},
			jobDelay: time.Millisecond,
			expired:  true,
		},
		{
			name:    "FlowMon-K5/clean",
			app:     "FlowMon",
			opts:    explore.Options{TracePackets: 50, DominantK: 5, BoundPrune: true},
			copts:   Options{ShardSize: 1024, LeaseTTL: 10 * time.Second},
			workers: 3,
		},
		{
			name:    "FlowMon-K5/torn-worker",
			app:     "FlowMon",
			opts:    explore.Options{TracePackets: 50, DominantK: 5, BoundPrune: true},
			copts:   Options{ShardSize: 1024, LeaseTTL: 2 * time.Second},
			workers: 3,
			scripts: map[int]faultScript{
				0: func(c *faultio.Conn, attempt int) net.Conn {
					if attempt == 1 {
						return c.TearWriteAfter(4000, nil)
					}
					return c
				},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := app(t, tc.app)

			// Single-process reference on a fresh engine.
			refEng := explore.NewEngine(a, tc.opts)
			s1ref, _, err := refEng.Explore(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want := survivorLabels(s1ref.Survivors)

			h := campaignHarness{
				app: a, opts: tc.opts, copts: tc.copts,
				workers: tc.workers, scripts: tc.scripts,
				killTime: tc.killTime, jobDelay: tc.jobDelay,
			}
			coord, ceng := h.run(t)

			// The distributed campaign's live front already matches.
			gotLive := make([]string, 0)
			for _, p := range coord.frontSnapshot() {
				gotLive = append(gotLive, p.Label)
			}
			sort.Strings(gotLive)
			if !equalStrings(gotLive, want) {
				t.Errorf("distributed live front %v, want %v", gotLive, want)
			}

			// And the warm rerun over the merged cache — what the CLI
			// reports from — reproduces the survivor set too.
			s1d, _, err := ceng.Explore(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := survivorLabels(s1d.Survivors); !equalStrings(got, want) {
				t.Errorf("warm-rerun survivors %v, want %v", got, want)
			}

			dist := coord.DistState()
			if tc.expired {
				expired := int64(0)
				for _, w := range dist.Workers {
					expired += w.Expired
				}
				if expired == 0 {
					t.Error("expected at least one expired lease")
				}
			}
			if len(dist.Workers) == 0 {
				t.Error("no workers recorded in DistState")
			}
		})
	}
}

// TestDistributedReportMatchesSingleProcess compares the full
// methodology report — cross-configuration Pareto set included —
// between a distributed campaign's warm rerun and an ordinary
// single-process run.
func TestDistributedReportMatchesSingleProcess(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true}

	refEng := explore.NewEngine(a, opts)
	ref, err := core.Methodology{App: a, Opts: opts, Engine: refEng}.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	h := campaignHarness{
		app: a, opts: opts,
		copts:   Options{ShardSize: 16, LeaseTTL: time.Second},
		workers: 2,
	}
	_, ceng := h.run(t)
	got, err := core.Methodology{App: a, Opts: opts, Engine: ceng}.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(got.ParetoSet) != len(ref.ParetoSet) {
		t.Fatalf("distributed Pareto set has %d points, single-process %d", len(got.ParetoSet), len(ref.ParetoSet))
	}
	for i := range ref.ParetoSet {
		if got.ParetoSet[i].Label != ref.ParetoSet[i].Label || got.ParetoSet[i].Vec != ref.ParetoSet[i].Vec {
			t.Errorf("Pareto point %d: distributed %v %v, single-process %v %v",
				i, got.ParetoSet[i].Label, got.ParetoSet[i].Vec, ref.ParetoSet[i].Label, ref.ParetoSet[i].Vec)
		}
	}
	if got.EnergySaving != ref.EnergySaving || got.TimeSaving != ref.TimeSaving {
		t.Errorf("headline savings differ: distributed (%v, %v), single-process (%v, %v)",
			got.EnergySaving, got.TimeSaving, ref.EnergySaving, ref.TimeSaving)
	}
}

// TestDuplicateResultMergeIdempotent drives the wire protocol by hand
// and reports the same shard twice: the second merge must settle
// nothing, leave the front untouched, and still ack — the first-
// settled-wins contract expiry-reassignment correctness rests on.
func TestDuplicateResultMergeIdempotent(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 2, BoundPrune: true}
	ceng := explore.NewEngine(a, opts)
	coord := NewCoordinator(a, ceng, Options{ShardSize: 8, LeaseTTL: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(context.Background(), ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	expect := func(want byte) []byte {
		t.Helper()
		id, payload, err := readFrame(br)
		if err != nil {
			t.Fatalf("reading %s: %v", msgName(want), err)
		}
		if id != want {
			t.Fatalf("got %s, want %s", msgName(id), msgName(want))
		}
		return payload
	}

	if err := writeMsg(conn, msgHello, hello{Worker: "raw", Proto: ProtoVersion, Campaign: ceng.CampaignID()}); err != nil {
		t.Fatal(err)
	}
	expect(msgWelcome)

	weng := explore.NewEngine(a, opts)
	cursor := explore.NewDeltaCursor()
	checked := false
	for done := false; !done; {
		if err := writeMsg(conn, msgLeaseReq, leaseReq{Worker: "raw"}); err != nil {
			t.Fatal(err)
		}
		id, payload, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		switch id {
		case msgDone:
			done = true
		case msgWait:
			time.Sleep(10 * time.Millisecond)
		case msgLease:
			var l lease
			if err := decodeMsg(id, payload, &l); err != nil {
				t.Fatal(err)
			}
			rg := weng.NewRemoteGuard(l.Front)
			rm := resultsMsg{Worker: "raw", LeaseID: l.ID}
			for _, spec := range l.Jobs {
				rm.Outcomes = append(rm.Outcomes, weng.ResolveJob(spec, rg))
			}
			rm.Delta = weng.Cache().ExportDelta(cursor)
			if err := writeMsg(conn, msgResults, rm); err != nil {
				t.Fatal(err)
			}
			expect(msgAck)
			if !checked {
				checked = true
				settled := ceng.Settled()
				front := coord.frontSnapshot()
				// Report the identical shard again (late duplicate from
				// a reassigned lease): merged as a pure no-op.
				if err := writeMsg(conn, msgResults, rm); err != nil {
					t.Fatal(err)
				}
				expect(msgAck)
				if got := ceng.Settled(); got != settled {
					t.Fatalf("duplicate merge advanced the watermark: %d -> %d", settled, got)
				}
				refront := coord.frontSnapshot()
				if len(refront) != len(front) {
					t.Fatalf("duplicate merge changed the front: %d -> %d points", len(front), len(refront))
				}
			}
		default:
			t.Fatalf("unexpected %s", msgName(id))
		}
	}
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if !checked {
		t.Fatal("campaign completed without ever granting a lease")
	}

	// The end state is still the single-process front.
	s1ref, _, err := explore.NewEngine(a, opts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s1d, _, err := ceng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := survivorLabels(s1d.Survivors), survivorLabels(s1ref.Survivors); !equalStrings(got, want) {
		t.Fatalf("front after duplicate merges %v, want %v", got, want)
	}
}

// TestCoordinatorResumesFromCheckpoint kills a coordinator mid-campaign
// (context cancellation after the first persisted checkpoint), persists
// its cache, and restarts a fresh coordinator from the loaded file: the
// warm pre-pass must settle everything the dead campaign proved, the
// workers redial through their backoff into the new incarnation, and
// the final front must still match single-process.
func TestCoordinatorResumesFromCheckpoint(t *testing.T) {
	a := app(t, "DRR")
	path := filepath.Join(t.TempDir(), "coord.replay")

	mkOpts := func(cache *explore.Cache) explore.Options {
		return explore.Options{
			TracePackets: 200, DominantK: 3, BoundPrune: true,
			Cache: cache, CheckpointEvery: 50,
		}
	}

	// First incarnation: cancel as soon as a checkpoint fires.
	cache1 := explore.NewCache()
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	opts1 := mkOpts(cache1)
	opts1.Checkpoint = func(explore.Checkpoint) { cancel1() }
	ceng1 := explore.NewEngine(a, opts1)
	coord1 := NewCoordinator(a, ceng1, Options{ShardSize: 8, LeaseTTL: time.Second})
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Workers dial whatever address the current coordinator listens on,
	// so they ride the restart on their ordinary retry path.
	var addr atomic.Value
	addr.Store(ln1.Addr().String())
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var wg sync.WaitGroup
	workerOpts := explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true}
	for i := 0; i < 2; i++ {
		weng := explore.NewEngine(a, workerOpts)
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(wctx, weng, WorkerOptions{
				ID: fmt.Sprintf("w%d", i),
				Dial: func(ctx context.Context) (net.Conn, error) {
					var d net.Dialer
					return d.DialContext(ctx, "tcp", addr.Load().(string))
				},
				BackoffMin:  10 * time.Millisecond,
				BackoffMax:  250 * time.Millisecond,
				ReadTimeout: 5 * time.Second,
				JobDelay:    time.Millisecond,
			})
		}()
	}

	err = coord1.Run(ctx1, ln1)
	if err == nil {
		t.Fatal("first coordinator completed before the kill; raise the job space or lower CheckpointEvery")
	}
	if ctx1.Err() == nil {
		t.Fatalf("first coordinator died of something other than the kill: %v", err)
	}
	ln1.Close()
	if err := cache1.SaveFile(path, true); err != nil {
		t.Fatal(err)
	}
	ck, ok := cache1.Checkpoint()
	if !ok || ck.Settled == 0 {
		t.Fatalf("no usable checkpoint after the kill (ok=%v settled=%d)", ok, ck.Settled)
	}

	// Second incarnation: fresh cache loaded from the file.
	cache2 := explore.NewCache()
	if _, err := cache2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	ceng2 := explore.NewEngine(a, mkOpts(cache2))
	coord2 := NewCoordinator(a, ceng2, Options{ShardSize: 8, LeaseTTL: time.Second})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr.Store(ln2.Addr().String())
	runErr := make(chan error, 1)
	go func() { runErr <- coord2.Run(context.Background(), ln2) }()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("restarted coordinator: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("restarted campaign never completed")
	}
	// The warm pre-pass, not the workers, must have answered at least
	// the checkpointed watermark's worth of jobs.
	if got := ceng2.Settled(); got < ck.Settled {
		t.Errorf("restart settled %d jobs, checkpoint had proven %d", got, ck.Settled)
	}
	coord2.Drain(20 * time.Second)
	ln2.Close()
	wcancel()
	wg.Wait()

	s1ref, _, err := explore.NewEngine(a, workerOpts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s1d, _, err := ceng2.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := survivorLabels(s1d.Survivors), survivorLabels(s1ref.Survivors); !equalStrings(got, want) {
		t.Fatalf("front after coordinator restart %v, want %v", got, want)
	}
}

// TestFrameCorruptionDetected pins the framing: flipping any byte of a
// written frame must fail the read, never decode garbage.
func TestFrameCorruptionDetected(t *testing.T) {
	var buf []byte
	w := writerFunc(func(p []byte) (int, error) { buf = append(buf, p...); return len(p), nil })
	if err := writeMsg(w, msgHello, hello{Worker: "w", Proto: 1, Campaign: "c"}); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		id, payload, err := readFrame(bufio.NewReader(readerOf(mut)))
		if err != nil {
			continue // detected at the frame layer
		}
		var h hello
		if decodeMsg(id, payload, &h) == nil && id == msgHello && h.Worker == "w" && h.Proto == 1 && h.Campaign == "c" {
			t.Fatalf("flipping byte %d went entirely undetected", i)
		}
	}
	// And the pristine frame still round-trips.
	id, payload, err := readFrame(bufio.NewReader(readerOf(buf)))
	if err != nil {
		t.Fatal(err)
	}
	var h hello
	if err := decodeMsg(id, payload, &h); err != nil {
		t.Fatal(err)
	}
	if h.Worker != "w" || h.Campaign != "c" {
		t.Fatalf("round-trip mangled the message: %+v", h)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

type byteReader struct {
	data []byte
	off  int
}

func readerOf(b []byte) *byteReader { return &byteReader{data: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestCampaignMismatchRejected pins admission: a worker exploring a
// different job space must be refused permanently, not fed shards.
func TestCampaignMismatchRejected(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 2, BoundPrune: true}
	ceng := explore.NewEngine(a, opts)
	coord := NewCoordinator(a, ceng, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(ctx, ln) }()
	t.Cleanup(func() { cancel(); <-runErr })

	// Same app, different trace length: a different campaign.
	weng := explore.NewEngine(a, explore.Options{TracePackets: 100, DominantK: 2, BoundPrune: true})
	err = RunWorker(context.Background(), weng, WorkerOptions{
		ID: "misfit",
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", ln.Addr().String())
		},
	})
	if err == nil {
		t.Fatal("mismatched worker was admitted")
	}
}
