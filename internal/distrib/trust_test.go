package distrib

// Untrusted-worker resilience: token/TLS admission, spot-check
// verification, quarantine with retroactive invalidation, hedged
// leases. These tests drive real campaigns over localhost TCP plus, in
// the surgical cases, the wire protocol by hand — full control over
// who lies, when, and about what.

import (
	"bufio"
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/metrics"
)

// lieNearZero replaces an exact outcome's objective vector with a
// near-zero one: the strongest lie — it dominates everything, so it
// must become a front candidate and face verification.
func lieNearZero(o *explore.JobOutcome) {
	if o.Err != "" || o.Result.Aborted {
		return
	}
	o.Result.Vec = metrics.Vector{Energy: 1e-9, Time: 1e-9, Accesses: 1, Footprint: 1}
}

// TestTokenAuth runs an authenticated campaign: the worker presenting
// the shared token completes it, the worker presenting a wrong token
// is permanently rejected without disturbing it.
func TestTokenAuth(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 2, BoundPrune: true}

	ref, _, err := explore.NewEngine(a, opts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := survivorLabels(ref.Survivors)

	var mu sync.Mutex
	errs := make(map[int]error)
	h := campaignHarness{
		app: a, opts: opts,
		copts:   Options{ShardSize: 16, LeaseTTL: 2 * time.Second, Token: "s3cret"},
		workers: 2,
		tokens:  map[int]string{0: "s3cret", 1: "wrong"},
		onExit: func(i int, err error) {
			mu.Lock()
			errs[i] = err
			mu.Unlock()
		},
	}
	coord, ceng := h.run(t)

	mu.Lock()
	goodErr, badErr := errs[0], errs[1]
	mu.Unlock()
	if goodErr != nil {
		t.Errorf("authenticated worker exited with %v", goodErr)
	}
	if badErr == nil || !strings.Contains(badErr.Error(), "token") {
		t.Errorf("bad-token worker exited with %v, want a token rejection", badErr)
	}
	if w := coord.DistState().Workers["w1"]; w.Leased != 0 {
		t.Errorf("bad-token worker was granted %d leases", w.Leased)
	}

	s1, _, err := ceng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := survivorLabels(s1.Survivors); !equalStrings(got, want) {
		t.Errorf("authenticated campaign survivors %v, want %v", got, want)
	}
}

// TestTLSCampaign runs a campaign over TLS with a pinned self-signed
// certificate: authenticated workers interoperate and reproduce the
// single-process front, while a plaintext peer and a peer pinning the
// wrong certificate are rejected without disturbing anything.
func TestTLSCampaign(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 2, BoundPrune: true}
	dir := t.TempDir()
	certFile := filepath.Join(dir, "coord.crt")
	keyFile := filepath.Join(dir, "coord.key")
	if err := GenerateCert(certFile, keyFile, nil); err != nil {
		t.Fatal(err)
	}
	srvCfg, err := ServerTLS(certFile, keyFile)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg, err := ClientTLS(certFile)
	if err != nil {
		t.Fatal(err)
	}

	ref, _, err := explore.NewEngine(a, opts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := survivorLabels(ref.Survivors)

	ceng := explore.NewEngine(a, opts)
	coord := NewCoordinator(a, ceng, Options{ShardSize: 16, LeaseTTL: 2 * time.Second, Token: "tls-token"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(context.Background(), tls.NewListener(ln, srvCfg)) }()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		weng := explore.NewEngine(a, opts)
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunWorker(context.Background(), weng, WorkerOptions{
				ID: fmt.Sprintf("tls-w%d", i),
				Dial: func(ctx context.Context) (net.Conn, error) {
					var d net.Dialer
					c, err := d.DialContext(ctx, "tcp", addr)
					if err != nil {
						return nil, err
					}
					return tls.Client(c, cliCfg), nil
				},
				Token:       "tls-token",
				BackoffMin:  10 * time.Millisecond,
				BackoffMax:  200 * time.Millisecond,
				ReadTimeout: 5 * time.Second,
			})
			if err != nil {
				t.Errorf("TLS worker %d: %v", i, err)
			}
		}()
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("TLS campaign never completed")
	}

	// A plaintext peer: its hello is gibberish to the TLS server, the
	// connection dies during or right after the handshake attempt.
	if pc, err := net.Dial("tcp", addr); err == nil {
		pc.SetDeadline(time.Now().Add(5 * time.Second))
		writeMsg(pc, msgHello, hello{Worker: "plain", Proto: ProtoVersion, Campaign: ceng.CampaignID(), Token: "tls-token"})
		if _, _, err := readFrame(bufio.NewReader(pc)); err == nil {
			t.Error("plaintext peer read a well-formed frame from a TLS listener")
		}
		pc.Close()
	}

	// A peer pinning a different certificate: its own verifier must
	// refuse the handshake.
	otherCert := filepath.Join(dir, "other.crt")
	otherKey := filepath.Join(dir, "other.key")
	if err := GenerateCert(otherCert, otherKey, nil); err != nil {
		t.Fatal(err)
	}
	wrongCfg, err := ClientTLS(otherCert)
	if err != nil {
		t.Fatal(err)
	}
	if rc, err := net.Dial("tcp", addr); err == nil {
		tc := tls.Client(rc, wrongCfg)
		tc.SetDeadline(time.Now().Add(5 * time.Second))
		if err := tc.Handshake(); err == nil {
			t.Error("handshake with a wrong pinned certificate succeeded")
		}
		tc.Close()
	}

	coord.Drain(20 * time.Second)
	ln.Close()
	wg.Wait()

	s1, _, err := ceng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := survivorLabels(s1.Survivors); !equalStrings(got, want) {
		t.Errorf("TLS campaign survivors %v, want %v", got, want)
	}
}

// TestLyingWorkerQuarantined runs a full campaign with one worker that
// reports a dominating lie for every exact result: verification must
// quarantine it, the campaign must complete on the honest worker, and
// the final front must be bit-identical in membership to the
// single-process reference.
func TestLyingWorkerQuarantined(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true}

	ref, _, err := explore.NewEngine(a, opts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := survivorLabels(ref.Survivors)

	var mu sync.Mutex
	errs := make(map[int]error)
	h := campaignHarness{
		app: a, opts: opts,
		copts:     Options{ShardSize: 16, LeaseTTL: 2 * time.Second, VerifyRate: 1.0},
		workers:   2,
		jobDelays: map[int]time.Duration{0: 2 * time.Millisecond}, // let the liar win leases
		mutate:    map[int]func(*explore.JobOutcome){1: lieNearZero},
		onExit: func(i int, err error) {
			mu.Lock()
			errs[i] = err
			mu.Unlock()
		},
	}
	coord, ceng := h.run(t)

	dist := coord.DistState()
	liar := dist.Workers["w1"]
	if liar == (explore.DistWorkerStats{}) {
		t.Fatal("lying worker never recorded")
	}
	if !liar.Quarantined {
		t.Fatal("lying worker was not quarantined")
	}
	if liar.Mismatched == 0 {
		t.Error("quarantined worker has no recorded mismatch")
	}
	mu.Lock()
	liarErr := errs[1]
	mu.Unlock()
	if liarErr == nil || !strings.Contains(liarErr.Error(), "quarantin") {
		t.Errorf("lying worker exited with %v, want a quarantine rejection", liarErr)
	}

	gotLive := make([]string, 0)
	for _, p := range coord.frontSnapshot() {
		gotLive = append(gotLive, p.Label)
	}
	sort.Strings(gotLive)
	if !equalStrings(gotLive, want) {
		t.Errorf("live front with a liar %v, want %v", gotLive, want)
	}
	s1, _, err := ceng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := survivorLabels(s1.Survivors); !equalStrings(got, want) {
		t.Errorf("warm-rerun survivors with a liar %v, want %v", got, want)
	}
}

// rawWorker drives the wire protocol by hand on one connection.
type rawWorker struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	id   string
}

func dialRaw(t *testing.T, addr, id, campaign string) *rawWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := &rawWorker{t: t, conn: conn, br: bufio.NewReader(conn), id: id}
	w.write(msgHello, hello{Worker: id, Proto: ProtoVersion, Campaign: campaign})
	return w
}

func (w *rawWorker) write(id byte, v any) {
	w.t.Helper()
	if err := writeMsg(w.conn, id, v); err != nil {
		w.t.Fatalf("%s: writing %s: %v", w.id, msgName(id), err)
	}
}

func (w *rawWorker) read() (byte, []byte) {
	w.t.Helper()
	w.conn.SetReadDeadline(time.Now().Add(time.Minute))
	id, payload, err := readFrame(w.br)
	if err != nil {
		w.t.Fatalf("%s: reading: %v", w.id, err)
	}
	return id, payload
}

func (w *rawWorker) expect(want byte) []byte {
	w.t.Helper()
	id, payload := w.read()
	if id != want {
		if id == msgReject {
			var rj reject
			decodeMsg(id, payload, &rj)
			w.t.Fatalf("%s: got reject (%s), want %s", w.id, rj.Reason, msgName(want))
		}
		w.t.Fatalf("%s: got %s, want %s", w.id, msgName(id), msgName(want))
	}
	return payload
}

// leaseNow requests until a lease is granted (riding out wait hints).
func (w *rawWorker) leaseNow() lease {
	w.t.Helper()
	for i := 0; i < 200; i++ {
		w.write(msgLeaseReq, leaseReq{Worker: w.id})
		id, payload := w.read()
		switch id {
		case msgLease:
			var l lease
			if err := decodeMsg(id, payload, &l); err != nil {
				w.t.Fatal(err)
			}
			return l
		case msgWait:
			time.Sleep(10 * time.Millisecond)
		default:
			w.t.Fatalf("%s: got %s waiting for a lease", w.id, msgName(id))
		}
	}
	w.t.Fatalf("%s: no lease after 200 requests", w.id)
	return lease{}
}

// TestQuarantineInvalidatesPastResults is the surgical quarantine
// transcript: a worker first reports a clean shard (its dominated
// results settle unverified), then reports a dominating lie. The lie
// faces front-candidate verification, the worker is quarantined, its
// past unverified results are invalidated back into the queue, the
// locally computed truth is settled in the lie's place, and an honest
// worker completes the campaign to the reference front. The worker's
// next hello is refused.
func TestQuarantineInvalidatesPastResults(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 2, BoundPrune: true}

	ref, _, err := explore.NewEngine(a, opts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := survivorLabels(ref.Survivors)

	ceng := explore.NewEngine(a, opts)
	// VerifyRate just above zero: spot-checking is (almost surely)
	// never drawn, so admission rests entirely on the always-verify
	// front-candidate rule — the path under test.
	coord := NewCoordinator(a, ceng, Options{ShardSize: 16, LeaseTTL: 10 * time.Second, VerifyRate: 1e-12})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(context.Background(), ln) }()

	liar := dialRaw(t, addr, "liar", ceng.CampaignID())
	defer liar.conn.Close()
	liar.expect(msgWelcome)

	// Shard 1: resolved honestly. The exact dominated results settle
	// unverified with this worker's provenance.
	weng := explore.NewEngine(a, opts)
	l1 := liar.leaseNow()
	rm := resultsMsg{Worker: "liar", LeaseID: l1.ID}
	rg := weng.NewRemoteGuard(l1.Front)
	for _, spec := range l1.Jobs {
		rm.Outcomes = append(rm.Outcomes, weng.ResolveJob(spec, rg))
	}
	liar.write(msgResults, rm)
	liar.expect(msgAck)

	unverifiedBefore := len(coord.DistState().Unverified)
	if unverifiedBefore == 0 {
		t.Fatal("clean shard left nothing unverified; the invalidation path is untestable at this shard size")
	}

	// Shard 2: one fabricated, dominating outcome. Identity fields
	// match the spec (the lie is about the objectives, not the job), so
	// only verification can catch it.
	l2 := liar.leaseNow()
	spec := l2.Jobs[0]
	lie := explore.JobOutcome{Index: spec.Index}
	lie.Result = explore.Result{
		App:    a.Name(),
		Config: spec.Cfg,
		Assign: spec.Assign,
		Vec:    metrics.Vector{Energy: 1e-9, Time: 1e-9, Accesses: 1, Footprint: 1},
	}
	liar.write(msgResults, resultsMsg{Worker: "liar", LeaseID: l2.ID, Outcomes: []explore.JobOutcome{lie}})
	id, payload := liar.read()
	if id != msgReject {
		t.Fatalf("lying report answered with %s, want reject", msgName(id))
	}
	var rj reject
	if err := decodeMsg(id, payload, &rj); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rj.Reason, "quarantin") {
		t.Fatalf("reject reason %q does not mention quarantine", rj.Reason)
	}

	dist := coord.DistState()
	lw := dist.Workers["liar"]
	if !lw.Quarantined || lw.Mismatched == 0 {
		t.Fatalf("liar stats after the lie: %+v, want quarantined with a mismatch", lw)
	}
	if dist.Invalidated == 0 {
		t.Errorf("no past results were invalidated (had %d unverified before the lie)", unverifiedBefore)
	}
	if dist.Recovered == 0 {
		t.Error("the lied-about job was not settled from the local re-execution")
	}
	for key, who := range dist.Unverified {
		if who == "liar" {
			t.Errorf("unverified provenance for %s still names the quarantined worker", key)
		}
	}

	// The quarantined worker redials: refused at hello.
	again, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	writeMsg(again, msgHello, hello{Worker: "liar", Proto: ProtoVersion, Campaign: ceng.CampaignID()})
	again.SetReadDeadline(time.Now().Add(time.Minute))
	id2, p2, err := readFrame(bufio.NewReader(again))
	if err != nil {
		t.Fatalf("reading hello response after quarantine: %v", err)
	}
	if id2 != msgReject {
		t.Fatalf("quarantined worker's hello answered with %s, want reject", msgName(id2))
	}
	var rj2 reject
	if err := decodeMsg(id2, p2, &rj2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rj2.Reason, "quarantin") {
		t.Errorf("hello reject reason %q does not mention quarantine", rj2.Reason)
	}
	again.Close()

	// An honest worker finishes the campaign, including the re-queued
	// invalidated work.
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		heng := explore.NewEngine(a, opts)
		RunWorker(hctx, heng, WorkerOptions{
			ID: "honest",
			Dial: func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", addr)
			},
			BackoffMin:  10 * time.Millisecond,
			BackoffMax:  200 * time.Millisecond,
			ReadTimeout: 5 * time.Second,
		})
	}()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("campaign never completed after the quarantine")
	}
	coord.Drain(20 * time.Second)
	ln.Close()
	wg.Wait()

	s1, _, err := ceng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := survivorLabels(s1.Survivors); !equalStrings(got, want) {
		t.Errorf("survivors after quarantine and recovery %v, want %v", got, want)
	}
}

// TestHedgeExpiryNoDoubleRequeue pins coverage counting: a straggler's
// shard is hedged to a second worker, then the straggler's lease
// expires while the hedge still covers the jobs — the expiry must not
// put a second copy in the queue. A probe lease request right after
// the expiry must see an empty queue, and the per-worker settle counts
// must sum exactly to the engine's settled watermark.
func TestHedgeExpiryNoDoubleRequeue(t *testing.T) {
	a := app(t, "DRR")
	opts := explore.Options{TracePackets: 200, DominantK: 2, BoundPrune: true}

	ref, _, err := explore.NewEngine(a, opts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := survivorLabels(ref.Survivors)

	ceng := explore.NewEngine(a, opts)
	coord := NewCoordinator(a, ceng, Options{
		ShardSize:  4096, // one shard holds the whole step
		LeaseTTL:   800 * time.Millisecond,
		HedgeAfter: 400 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(context.Background(), ln) }()

	// The straggler takes the whole step-1 shard and goes silent.
	slow := dialRaw(t, addr, "slow", ceng.CampaignID())
	defer slow.conn.Close()
	slow.expect(msgWelcome)
	l1 := slow.leaseNow()

	// The healthy worker asks for work: nothing is leasable until the
	// hedge fires, then it receives the straggler's jobs re-shardered
	// as a hedge.
	fast := dialRaw(t, addr, "fast", ceng.CampaignID())
	defer fast.conn.Close()
	fast.expect(msgWelcome)
	l2 := fast.leaseNow()
	if !l2.Reassigned {
		t.Error("hedge lease not marked reassigned")
	}
	if len(l2.Jobs) != len(l1.Jobs) {
		t.Errorf("hedge lease carries %d jobs, straggler held %d", len(l2.Jobs), len(l1.Jobs))
	}

	// Resolve the hedge honestly but do not report yet: the straggler's
	// lease must expire first, with the hedge as the only live cover.
	weng := explore.NewEngine(a, opts)
	rm := resultsMsg{Worker: "fast", LeaseID: l2.ID}
	rg := weng.NewRemoteGuard(l2.Front)
	for _, spec := range l2.Jobs {
		rm.Outcomes = append(rm.Outcomes, weng.ResolveJob(spec, rg))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if w := coord.DistState().Workers["slow"]; w.Expired >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("straggler lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The probe: with the jobs still covered by the outstanding hedge,
	// the expiry must not have re-queued anything.
	probe := dialRaw(t, addr, "probe", ceng.CampaignID())
	defer probe.conn.Close()
	probe.expect(msgWelcome)
	probe.write(msgLeaseReq, leaseReq{Worker: "probe"})
	if id, _ := probe.read(); id != msgWait {
		t.Fatalf("probe after expiry got %s, want wait (double-requeued shard?)", msgName(id))
	}

	// Report the hedge; the campaign proceeds and the fast worker
	// finishes it.
	fast.write(msgResults, rm)
	fast.expect(msgAck)
	cursor := explore.NewDeltaCursor()
	for done := false; !done; {
		fast.write(msgLeaseReq, leaseReq{Worker: "fast"})
		id, payload := fast.read()
		switch id {
		case msgDone:
			done = true
		case msgWait:
			time.Sleep(10 * time.Millisecond)
		case msgLease:
			var l lease
			if err := decodeMsg(id, payload, &l); err != nil {
				t.Fatal(err)
			}
			rg := weng.NewRemoteGuard(l.Front)
			rm := resultsMsg{Worker: "fast", LeaseID: l.ID}
			for _, spec := range l.Jobs {
				rm.Outcomes = append(rm.Outcomes, weng.ResolveJob(spec, rg))
			}
			rm.Delta = weng.Cache().ExportDelta(cursor)
			fast.write(msgResults, rm)
			fast.expect(msgAck)
		default:
			t.Fatalf("fast: unexpected %s", msgName(id))
		}
	}
	if err := <-runErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	dist := coord.DistState()
	sw, fw := dist.Workers["slow"], dist.Workers["fast"]
	if sw.Expired == 0 {
		t.Error("straggler lease never recorded as expired")
	}
	if sw.JobsRequeued != 0 {
		t.Errorf("straggler expiry re-queued %d jobs despite live hedge cover", sw.JobsRequeued)
	}
	if sw.HedgesFired == 0 {
		t.Error("no hedge recorded against the straggler")
	}
	if fw.HedgesWon == 0 {
		t.Error("hedge holder settled the shard but won no hedge")
	}

	// Stats-sum: every settle event is attributed to exactly one
	// worker (no warm pre-pass, no recoveries here), so the engine's
	// watermark must equal the sum — a double-settle or a lost requeue
	// would break the equality.
	var settledSum int64
	for _, w := range dist.Workers {
		settledSum += w.JobsSettled
	}
	if got := ceng.Settled(); got != settledSum+dist.Recovered {
		t.Errorf("engine settled %d, worker stats sum to %d (+%d recovered)", got, settledSum, dist.Recovered)
	}

	s1, _, err := ceng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := survivorLabels(s1.Survivors); !equalStrings(got, want) {
		t.Errorf("survivors after hedged expiry %v, want %v", got, want)
	}
}

// TestQuarantineSurvivesCoordinatorRestart runs a campaign in which a
// liar is quarantined, then rebuilds a coordinator from the same cache:
// the trust state must ride the checkpoint — the new incarnation knows
// the quarantine and refuses the worker at hello.
func TestQuarantineSurvivesCoordinatorRestart(t *testing.T) {
	a := app(t, "DRR")
	cache := explore.NewCache()
	opts := explore.Options{
		TracePackets: 200, DominantK: 2, BoundPrune: true,
		Cache: cache, CheckpointEvery: 10,
	}
	ceng := explore.NewEngine(a, opts)
	coord := NewCoordinator(a, ceng, Options{ShardSize: 8, LeaseTTL: 2 * time.Second, VerifyRate: 1.0})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(context.Background(), ln) }()

	wopts := explore.Options{TracePackets: 200, DominantK: 2, BoundPrune: true}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		weng := explore.NewEngine(a, wopts)
		var mut func(*explore.JobOutcome)
		id := "honest"
		if i == 1 {
			id, mut = "liar", lieNearZero
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(context.Background(), weng, WorkerOptions{
				ID: id,
				Dial: func(ctx context.Context) (net.Conn, error) {
					var d net.Dialer
					return d.DialContext(ctx, "tcp", addr)
				},
				BackoffMin:    10 * time.Millisecond,
				BackoffMax:    200 * time.Millisecond,
				ReadTimeout:   5 * time.Second,
				JobDelay:      time.Millisecond,
				MutateOutcome: mut,
			})
		}()
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("campaign never completed")
	}
	coord.Drain(20 * time.Second)
	ln.Close()
	wg.Wait()
	if !coord.DistState().Workers["liar"].Quarantined {
		t.Fatal("liar was not quarantined in the first incarnation")
	}

	// Second incarnation over the same cache: the checkpointed trust
	// state must seed the new coordinator.
	ceng2 := explore.NewEngine(a, opts)
	coord2 := NewCoordinator(a, ceng2, Options{ShardSize: 8, LeaseTTL: 2 * time.Second, VerifyRate: 1.0})
	if !coord2.DistState().Workers["liar"].Quarantined {
		t.Fatal("quarantine did not survive the coordinator restart")
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	runErr2 := make(chan error, 1)
	go func() { runErr2 <- coord2.Run(context.Background(), ln2) }()
	select {
	case err := <-runErr2:
		if err != nil {
			t.Fatalf("restarted coordinator: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("warm restart never completed")
	}

	// The quarantined worker's hello is refused by the new incarnation.
	conn, err := net.Dial("tcp", ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeMsg(conn, msgHello, hello{Worker: "liar", Proto: ProtoVersion, Campaign: ceng2.CampaignID()})
	conn.SetReadDeadline(time.Now().Add(time.Minute))
	id, payload, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if id != msgReject {
		t.Fatalf("restarted coordinator answered the liar's hello with %s, want reject", msgName(id))
	}
	var rj reject
	if err := decodeMsg(id, payload, &rj); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rj.Reason, "quarantin") {
		t.Errorf("hello reject reason %q does not mention quarantine", rj.Reason)
	}
}
