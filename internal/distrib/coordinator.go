package distrib

import (
	"bufio"
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/explore"
	"repro/internal/pareto"
)

// Options tunes a coordinator. The zero value selects the defaults.
type Options struct {
	// ShardSize is how many jobs one lease carries (default 16).
	ShardSize int
	// LeaseTTL is how long a worker holds a shard before the
	// coordinator reaps and re-leases it (default 30s).
	LeaseTTL time.Duration
	// WaitHint is the retry delay handed to workers when nothing is
	// leasable (default 50ms).
	WaitHint time.Duration
	// VerifyRate is the fraction of exact remote results the
	// coordinator re-executes locally (pure live simulation, nothing
	// shared with the reporting worker) and cross-checks for exact
	// objective equality before admission. Selection is a seeded,
	// deterministic hash of the job identity, stable across restarts.
	// Independent of the rate, any exact result that would join a
	// survivor front is always verified — a lie there would poison the
	// broadcast pruning proofs and the report itself, so the spot-check
	// budget is spent where it cannot be skipped. 0 disables
	// verification entirely (trusted-fleet mode, the PR-9 behavior).
	VerifyRate float64
	// Token, when non-empty, is the shared secret every worker's hello
	// must present (constant-time compare). Combine with TLS on the
	// listener for campaigns that leave localhost.
	Token string
	// HedgeAfter fixes the straggler threshold: a lease outstanding
	// longer than this is speculatively re-leased to a second worker
	// (first-settled-wins makes the duplicate safe). 0 selects the
	// adaptive threshold — twice the p95 of observed shard completion
	// latencies — and a negative value disables hedging.
	HedgeAfter time.Duration
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return 16
	}
	return o.ShardSize
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return 30 * time.Second
	}
	return o.LeaseTTL
}

func (o Options) waitHint() time.Duration {
	if o.WaitHint <= 0 {
		return 50 * time.Millisecond
	}
	return o.WaitHint
}

// shard is one leasable unit of work: job indexes into the
// coordinator's spec table. reassigned marks a shard a previous lease
// lost; hedge marks a speculative duplicate of a straggling lease,
// with hedgeBy naming the straggler (who must not be handed its own
// hedge).
type shard struct {
	jobs       []int
	reassigned bool
	hedge      bool
	hedgeBy    string
}

// leaseState is one outstanding lease.
type leaseState struct {
	id      uint64
	worker  string
	step    int
	shard   shard
	granted time.Time
	expiry  time.Time
	hedged  bool // a hedge for this lease has been queued
}

// Coordinator owns a distributed campaign: the deterministic job
// space, the shard queue, outstanding leases, the exact survivor
// front, the trust state of every worker, and the merge of everything
// workers send back. All durable state lives in the engine's cache;
// the coordinator itself is soft state that a restart rebuilds —
// except the per-worker trust bookkeeping, which rides in the cache's
// checkpoint so a quarantine survives the restart too.
//
// The trust model: CRC32C guards the wire, not the computation. Every
// exact result that would join a survivor front — plus a seeded
// deterministic VerifyRate fraction of the rest — is re-executed on
// the coordinator's own engine by pure live simulation (no cache, no
// worker-shipped lanes) and compared for exact objective equality
// before admission. A mismatch quarantines the worker: outstanding
// leases are reaped, every unverified result it ever reported is
// invalidated back into the queue, and it is refused further
// participation. Coverage counting (one count per live queue or lease
// copy of a job) makes requeues exact under hedging: a job is
// re-queued only when its last copy dies.
type Coordinator struct {
	app        apps.App
	eng        *explore.Engine
	opts       Options
	campaignID string

	mu          sync.Mutex
	cond        *sync.Cond
	step        int
	total1      int
	specs       map[int]explore.JobSpec
	keys        map[int]string // job index -> cache identity key
	keyIdx      map[string]int // cache identity key -> job index
	settled     map[int]bool
	cover       map[int]int // live queue+lease copies per unsettled job
	remaining   int         // unsettled jobs of the current step
	queue       []shard
	leases      map[uint64]*leaseState
	nextLease   uint64
	staleBefore uint64 // reports from leases below this id are dropped
	restart     bool   // a quarantine wiped completed-step work: re-lay out
	front       *pareto.OnlineFront
	fronts2     map[string]*pareto.OnlineFront // per-config step-2 fronts (admission candidacy)
	res1        map[int]explore.Result
	res2        map[int]explore.Result
	unverified  map[string]string // cache identity key -> reporting worker
	invalidated int64
	recovered   int64
	durs        []time.Duration // recent shard completion latencies (hedging)
	workers     map[string]*explore.DistWorkerStats
	conns       map[net.Conn]bool
	failure     error
	doneAll     bool
	stop        chan struct{}
}

// NewCoordinator builds a coordinator for the app's campaign as
// configured by eng. The engine must have a cache (it is the durable
// state) and is the same engine the caller later reports from. If the
// cache carries a checkpoint of this campaign, the per-worker trust
// state is re-admitted from it: quarantines survive the restart, and
// any results a quarantined worker reported that the dead coordinator
// had not yet wiped are invalidated before the warm pre-pass can
// settle them.
func NewCoordinator(app apps.App, eng *explore.Engine, opts Options) *Coordinator {
	c := &Coordinator{
		app:        app,
		eng:        eng,
		opts:       opts,
		campaignID: eng.CampaignID(),
		specs:      make(map[int]explore.JobSpec),
		keys:       make(map[int]string),
		keyIdx:     make(map[string]int),
		settled:    make(map[int]bool),
		cover:      make(map[int]int),
		leases:     make(map[uint64]*leaseState),
		front:      pareto.NewOnlineFront(),
		fronts2:    make(map[string]*pareto.OnlineFront),
		res1:       make(map[int]explore.Result),
		res2:       make(map[int]explore.Result),
		unverified: make(map[string]string),
		workers:    make(map[string]*explore.DistWorkerStats),
		conns:      make(map[net.Conn]bool),
		stop:       make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if cache := eng.Cache(); cache != nil {
		if ck, ok := cache.Checkpoint(); ok && ck.App == app.Name() && ck.Ctx == eng.ExploreContext() && ck.Dist != nil {
			for id, w := range ck.Dist.Workers {
				cw := w
				c.workers[id] = &cw
			}
			c.invalidated = ck.Dist.Invalidated
			c.recovered = ck.Dist.Recovered
			for key, worker := range ck.Dist.Unverified {
				if w := c.workers[worker]; w != nil && w.Quarantined {
					// The dead coordinator quarantined this worker but
					// crashed before wiping everything; finish the wipe
					// (invalidation is idempotent).
					if eng.InvalidateCached(key) {
						c.invalidated++
					}
					continue
				}
				c.unverified[key] = worker
			}
		}
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// DistState snapshots the per-worker bookkeeping and trust state (for
// checkpoints and the CLI stats table).
func (c *Coordinator) DistState() *explore.DistState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.distLocked()
}

func (c *Coordinator) distLocked() *explore.DistState {
	d := &explore.DistState{
		Workers:     make(map[string]explore.DistWorkerStats, len(c.workers)),
		Unverified:  make(map[string]string, len(c.unverified)),
		Invalidated: c.invalidated,
		Recovered:   c.recovered,
	}
	for id, w := range c.workers {
		d.Workers[id] = *w
	}
	for k, v := range c.unverified {
		d.Unverified[k] = v
	}
	return d
}

// Drain blocks until every worker connection has closed or the timeout
// elapses. After a successful Run, polling workers each receive done
// on their next lease request and leave; draining before exiting lets
// them finish cleanly instead of observing the coordinator vanish and
// redialing into the void. Workers that already died simply have no
// connection; the timeout bounds waiting for hung ones.
func (c *Coordinator) Drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.conns)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// frontSnapshot copies the current exact survivor front.
func (c *Coordinator) frontSnapshot() []pareto.Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.front.Points()
}

// Run drives the campaign over ln until every job of both exploration
// steps is settled in the engine's cache, then returns nil with the
// listener still serving — late workers keep receiving done until the
// caller closes ln. On context cancellation or a worker-reported
// simulation failure it snapshots a checkpoint, closes the listener
// and every connection (workers fall back to retry/backoff — the
// resume path), and returns the error.
//
// A restarted coordinator resumes from its cache automatically: the
// warm pre-pass settles every job the previous campaign proved before
// any shard is leased.
func (c *Coordinator) Run(ctx context.Context, ln net.Listener) error {
	defer context.AfterFunc(ctx, c.cond.Broadcast)()
	go c.acceptLoop(ln)
	go c.reaper()

	err := c.campaign(ctx)
	c.mu.Lock()
	if err == nil {
		c.doneAll = true
	} else if c.failure == nil {
		c.failure = err
	}
	conns := make([]net.Conn, 0, len(c.conns))
	for cn := range c.conns {
		conns = append(conns, cn)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	close(c.stop)
	if err != nil {
		c.eng.CheckpointExternal(c.stepNow(), c.frontSnapshot, c.DistState)
		ln.Close()
		for _, cn := range conns {
			cn.Close()
		}
	}
	return err
}

func (c *Coordinator) stepNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// campaign runs layout passes until one completes without a restart. A
// pass restarts when a quarantine wipes settled work that a completed
// step had already derived from (step-2 survivors descend from the
// step-1 front); the re-layout is cheap — everything honestly settled
// answers from the cache in the warm pre-pass, and only the
// invalidated jobs actually re-resolve.
func (c *Coordinator) campaign(ctx context.Context) error {
	for {
		restart, err := c.campaignPass(ctx)
		if err != nil {
			return err
		}
		if !restart {
			return nil
		}
		c.mu.Lock()
		c.resetLayoutLocked()
		c.mu.Unlock()
		c.logf("distrib: re-laying out the campaign: a quarantine wiped settled work a completed step derived from")
	}
}

// campaignPass lays out and waits out both exploration steps once.
func (c *Coordinator) campaignPass(ctx context.Context) (bool, error) {
	configs := explore.Configs(c.app)
	if len(configs) == 0 {
		return false, fmt.Errorf("distrib: %s has no network configurations", c.app.Name())
	}
	ref := configs[0]
	dominant, total1, err := c.eng.PlanStep1(ctx, ref)
	if err != nil {
		return false, err
	}

	// Step 1: the full combination space against the reference
	// configuration, guarded — workers prune against the broadcast
	// front exactly as a flat single-process scan would.
	step1 := make([]explore.JobSpec, total1)
	for combo := 0; combo < total1; combo++ {
		step1[combo] = explore.JobSpec{
			Index:   combo,
			Cfg:     ref,
			Assign:  c.eng.AssignForCombo(dominant, combo),
			Guarded: true,
		}
	}
	if restart, err := c.runStep(ctx, 1, total1, step1); err != nil || restart {
		return restart, err
	}

	// Survivors: the exact front over step-1 results, by combination
	// index for a deterministic step-2 layout. A quarantine may fire
	// between the step-1 wait loop returning and this derivation, so
	// the completeness of the layout is re-checked under the same lock
	// that reads the front.
	c.mu.Lock()
	if c.restart || c.layoutIncompleteLocked() {
		c.restart = true
		c.mu.Unlock()
		return true, nil
	}
	pts := c.front.Points()
	survivors := make([]explore.Result, 0, len(pts))
	tags := make([]int, 0, len(pts))
	for _, p := range pts {
		tags = append(tags, p.Tag)
	}
	sort.Ints(tags)
	for _, tag := range tags {
		survivors = append(survivors, c.res1[tag])
	}
	c.mu.Unlock()
	c.logf("distrib: step 1 settled, %d survivors", len(survivors))

	// Step 2: survivors crossed with every non-reference
	// configuration, exact — per-configuration fronts live only in the
	// final report, so remote guards have nothing sound to prune with
	// and full coverage keeps the cross-configuration charts complete.
	var step2 []explore.JobSpec
	idx := total1
	for _, cfg := range configs {
		if cfg.String() == ref.String() {
			continue
		}
		for _, sv := range survivors {
			step2 = append(step2, explore.JobSpec{Index: idx, Cfg: cfg, Assign: sv.Assign})
			idx++
		}
	}
	if restart, err := c.runStep(ctx, 2, len(step2), step2); err != nil || restart {
		return restart, err
	}
	c.mu.Lock()
	incomplete := c.restart || c.layoutIncompleteLocked()
	if incomplete {
		c.restart = true
	}
	c.mu.Unlock()
	if incomplete {
		return true, nil
	}
	c.logf("distrib: step 2 settled")
	return false, nil
}

// layoutIncompleteLocked reports whether any job of the current layout
// is unsettled — a quarantine can wipe settled work after a step's
// wait loop has already returned.
func (c *Coordinator) layoutIncompleteLocked() bool {
	for idx := range c.specs {
		if !c.settled[idx] {
			return true
		}
	}
	return false
}

// resetLayoutLocked drops every piece of soft layout state for a fresh
// campaign pass while keeping the trust state (worker stats,
// quarantines, unverified provenance) and the latency history.
// Outstanding leases are forgotten; reports from them are recognized
// by id and dropped (their deltas still merge — compositional entries
// are layout-independent).
func (c *Coordinator) resetLayoutLocked() {
	c.step = 0
	c.total1 = 0
	c.specs = make(map[int]explore.JobSpec)
	c.keys = make(map[int]string)
	c.keyIdx = make(map[string]int)
	c.settled = make(map[int]bool)
	c.cover = make(map[int]int)
	c.remaining = 0
	c.queue = nil
	c.leases = make(map[uint64]*leaseState)
	c.staleBefore = c.nextLease + 1
	c.front = pareto.NewOnlineFront()
	c.fronts2 = make(map[string]*pareto.OnlineFront)
	c.res1 = make(map[int]explore.Result)
	c.res2 = make(map[int]explore.Result)
	c.restart = false
}

// runStep installs one step's job space — settling everything the
// cache already proves in a warm pre-pass — and blocks until workers
// settle the rest. Before returning cleanly it audits any front member
// that is still unverified: the next step derives its job space from
// the front, so a dominated-at-admission lie that later surfaced onto
// the front (after invalidations reshaped it) must not survive the
// step boundary. Returns restart=true when a quarantine wiped settled
// work from a completed step and the campaign must re-lay out.
func (c *Coordinator) runStep(ctx context.Context, step, total int, jobs []explore.JobSpec) (bool, error) {
	var cold []int
	warm := 0
	c.mu.Lock()
	c.step = step
	if step == 1 {
		c.total1 = total
	}
	for _, spec := range jobs {
		c.specs[spec.Index] = spec
		key := c.eng.JobKey(spec)
		c.keys[spec.Index] = key
		c.keyIdx[key] = spec.Index
		if out, ok := c.eng.CachedOutcome(spec); ok {
			c.settleLocked(out, "", false)
			warm++
			continue
		}
		cold = append(cold, spec.Index)
	}
	c.remaining = len(cold)
	size := c.opts.shardSize()
	for len(cold) > 0 {
		n := min(size, len(cold))
		c.enqueueLocked(shard{jobs: cold[:n]})
		cold = cold[n:]
	}
	c.mu.Unlock()
	if warm > 0 {
		c.eng.SettleExternal(int64(warm), step, c.frontSnapshot, c.DistState)
		c.logf("distrib: step %d: %d of %d jobs already settled in cache", step, warm, total)
	}

	c.mu.Lock()
	for {
		for c.remaining > 0 && !c.restart && c.failure == nil && ctx.Err() == nil {
			c.cond.Wait()
		}
		if c.failure != nil {
			err := c.failure
			c.mu.Unlock()
			return false, err
		}
		if cerr := ctx.Err(); cerr != nil {
			c.mu.Unlock()
			return false, cerr
		}
		if c.restart {
			c.mu.Unlock()
			return true, nil
		}
		checks := c.unverifiedFrontLocked()
		if len(checks) == 0 {
			c.mu.Unlock()
			return false, nil
		}
		c.mu.Unlock()
		c.auditFront(step, checks)
		c.mu.Lock()
	}
}

// enqueueLocked appends a shard to the queue, counting one live copy
// for each of its unsettled jobs.
func (c *Coordinator) enqueueLocked(sh shard) {
	for _, j := range sh.jobs {
		if !c.settled[j] {
			c.cover[j]++
		}
	}
	c.queue = append(c.queue, sh)
}

// releaseLocked retires one holder of the given jobs — a closed or
// reaped lease — and returns the unsettled jobs no other lease or
// queued shard still covers: the ones that must requeue. Hedging is
// what makes the count necessary: a hedged job has two live copies,
// and losing one of them must not put a third in the queue.
func (c *Coordinator) releaseLocked(jobs []int) []int {
	var orphans []int
	for _, j := range jobs {
		if c.settled[j] {
			continue
		}
		if c.cover[j] > 0 {
			c.cover[j]--
		}
		if c.cover[j] == 0 {
			orphans = append(orphans, j)
		}
	}
	return orphans
}

// recountCoverLocked recomputes a job's live-copy count from scratch —
// needed when a quarantine un-settles a job whose cover entry was
// dropped at settle time, while stale copies of it may still sit in
// queued shards or outstanding leases.
func (c *Coordinator) recountCoverLocked(j int) int {
	n := 0
	for _, sh := range c.queue {
		for _, x := range sh.jobs {
			if x == j {
				n++
			}
		}
	}
	for _, ls := range c.leases {
		for _, x := range ls.shard.jobs {
			if x == j {
				n++
			}
		}
	}
	c.cover[j] = n
	return n
}

// settleLocked marks one outcome settled, feeding exact results into
// the survivor fronts. from names the reporting worker ("" for the
// coordinator's own warm pre-pass and verification re-executions);
// verified reports whether the result is trusted — locally computed or
// cross-checked bit-exact. Unverified remote settles record their
// provenance so a later quarantine can find and wipe them; a warm
// re-settle (from "", unverified) keeps whatever provenance an earlier
// incarnation recorded. Call with c.mu held and the outcome fresh.
func (c *Coordinator) settleLocked(out explore.JobOutcome, from string, verified bool) {
	c.settled[out.Index] = true
	delete(c.cover, out.Index)
	if key, ok := c.keys[out.Index]; ok {
		if verified {
			delete(c.unverified, key)
		} else if from != "" {
			c.unverified[key] = from
		}
	}
	if out.Err != "" || out.Result.Aborted {
		return
	}
	if out.Index < c.total1 {
		c.front.Add(out.Result.Point(out.Index))
		c.res1[out.Index] = out.Result
	} else {
		c.res2[out.Index] = out.Result
		c.front2Locked(c.specs[out.Index].Cfg).Add(out.Result.Point(out.Index))
	}
}

// front2Locked returns (creating on demand) the per-configuration
// step-2 front used for verification candidacy: step-2 jobs have no
// global front, but a lie that would lead a configuration's chart must
// be verified exactly like a step-1 front candidate.
func (c *Coordinator) front2Locked(cfg explore.Config) *pareto.OnlineFront {
	key := cfg.String()
	f := c.fronts2[key]
	if f == nil {
		f = pareto.NewOnlineFront()
		c.fronts2[key] = f
	}
	return f
}

// rebuildFrontsLocked reconstructs every front from the surviving
// settled results — the repair after a quarantine wipes members.
func (c *Coordinator) rebuildFrontsLocked() {
	c.front = pareto.NewOnlineFront()
	for idx, r := range c.res1 {
		c.front.Add(r.Point(idx))
	}
	c.fronts2 = make(map[string]*pareto.OnlineFront)
	for idx, r := range c.res2 {
		if spec, ok := c.specs[idx]; ok {
			c.front2Locked(spec.Cfg).Add(r.Point(idx))
		}
	}
}

// spotSelected deterministically selects a VerifyRate fraction of job
// identity keys: a seeded hash of (campaign, key), so the choice is
// uniform over the space, stable across coordinator restarts and
// re-layouts, and independent of which worker resolves the job or in
// what order reports arrive.
func (c *Coordinator) spotSelected(key string) bool {
	rate := c.opts.VerifyRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	io.WriteString(h, c.campaignID)
	io.WriteString(h, "\x00")
	io.WriteString(h, key)
	return float64(h.Sum64()>>11)/float64(1<<53) < rate
}

// verifySelectedLocked decides whether an exact remote outcome must be
// re-executed locally before admission: always when it would join a
// survivor front (a lie there would poison broadcast pruning proofs,
// survivor derivation and the report itself), plus the seeded
// VerifyRate fraction of everything else. Aborted outcomes (dominance
// tombstones, early aborts) are never verified — their vectors are
// front-dependent partial bounds, not deterministic ground truth; they
// also never enter a front, and a quarantine wipes a liar's tombstones
// through the same unverified-provenance path as everything else.
func (c *Coordinator) verifySelectedLocked(spec explore.JobSpec, out explore.JobOutcome) bool {
	if c.opts.VerifyRate <= 0 || out.Result.Aborted {
		return false
	}
	f := c.front
	if spec.Index >= c.total1 {
		f = c.front2Locked(spec.Cfg)
	}
	if !f.DominatedBeyond(out.Result.Vec, 0) {
		return true // front candidate: always verify
	}
	return c.spotSelected(c.keys[spec.Index])
}

// quarantineLocked ejects a worker caught reporting a wrong result:
// marks it (refused at hello, lease and results from now on), reaps
// its outstanding leases, invalidates every unverified result it ever
// reported — wiping the cache entries and un-settling the jobs — and
// rebuilds the fronts those results may have polluted. Reclaimed work
// requeues; if a wiped result belonged to a completed step, the
// campaign re-lays itself out, because later-step work derived from
// it. Idempotent past the Mismatched tally.
func (c *Coordinator) quarantineLocked(worker, reason string) {
	w := c.workerLocked(worker)
	w.Mismatched++
	if w.Quarantined {
		return
	}
	w.Quarantined = true
	c.logf("distrib: worker %s QUARANTINED: %s", worker, reason)

	reaped := 0
	var orphans []int
	for id, ls := range c.leases {
		if ls.worker != worker {
			continue
		}
		delete(c.leases, id)
		reaped++
		orphans = append(orphans, c.releaseLocked(ls.shard.jobs)...)
	}

	invalidated, wiped := 0, 0
	for key, from := range c.unverified {
		if from != worker {
			continue
		}
		delete(c.unverified, key)
		if c.eng.InvalidateCached(key) {
			invalidated++
			c.invalidated++
		}
		idx, ok := c.keyIdx[key]
		if !ok || !c.settled[idx] {
			continue
		}
		delete(c.settled, idx)
		delete(c.res1, idx)
		delete(c.res2, idx)
		wiped++
		stepOf := 2
		if idx < c.total1 {
			stepOf = 1
		}
		if stepOf == c.step {
			c.remaining++
			if c.recountCoverLocked(idx) == 0 {
				orphans = append(orphans, idx)
			}
		} else {
			c.restart = true
		}
	}
	c.rebuildFrontsLocked()
	if len(orphans) > 0 {
		c.enqueueLocked(shard{jobs: orphans, reassigned: true})
		w.JobsRequeued += int64(len(orphans))
	}
	note := ""
	if c.restart {
		note = "; campaign will re-lay out (a completed step lost settled work)"
	}
	c.logf("distrib: quarantine %s: %d leases reaped, %d unverified results invalidated, %d settled jobs wiped, %d re-queued%s",
		worker, reaped, invalidated, wiped, len(orphans), note)
}

// auditCheck is one unverified front member queued for step-boundary
// verification.
type auditCheck struct {
	spec explore.JobSpec
	key  string
	from string
	res  explore.Result
}

// unverifiedFrontLocked collects every member of the step-1 front and
// the per-configuration step-2 fronts whose result was remotely
// settled and never verified.
func (c *Coordinator) unverifiedFrontLocked() []auditCheck {
	var out []auditCheck
	seen := make(map[int]bool)
	add := func(idx int) {
		if seen[idx] {
			return
		}
		seen[idx] = true
		key, ok := c.keys[idx]
		if !ok {
			return
		}
		from, ok := c.unverified[key]
		if !ok {
			return
		}
		res, ok := c.res1[idx]
		if !ok {
			res, ok = c.res2[idx]
		}
		if !ok {
			return
		}
		out = append(out, auditCheck{spec: c.specs[idx], key: key, from: from, res: res})
	}
	for _, p := range c.front.Points() {
		add(p.Tag)
	}
	for _, f := range c.fronts2 {
		for _, p := range f.Points() {
			add(p.Tag)
		}
	}
	return out
}

// auditFront re-executes unverified front members and either blesses
// them or quarantines their reporters, settling the locally computed
// truth in their place.
func (c *Coordinator) auditFront(step int, checks []auditCheck) {
	var fresh int64
	for _, ac := range checks {
		truth := c.eng.ResolveJobLive(ac.spec)
		c.mu.Lock()
		if key, ok := c.keys[ac.spec.Index]; !ok || key != ac.key {
			c.mu.Unlock()
			continue // the layout changed under us (concurrent restart)
		}
		if _, still := c.unverified[ac.key]; !still {
			c.mu.Unlock()
			continue // verified or invalidated meanwhile
		}
		if truth.Err != "" {
			if c.failure == nil {
				c.failure = fmt.Errorf("distrib: auditing job %d: %s", ac.spec.Index, truth.Err)
			}
			c.mu.Unlock()
			continue
		}
		if !truth.Result.Aborted && truth.Result.Vec == ac.res.Vec {
			delete(c.unverified, ac.key)
			c.workerLocked(ac.from).Verified++
			c.mu.Unlock()
			continue
		}
		c.quarantineLocked(ac.from, fmt.Sprintf("front audit: job %d reported %+v, verified %+v", ac.spec.Index, ac.res.Vec, truth.Result.Vec))
		if !c.settled[ac.spec.Index] {
			// The quarantine wiped it; settle the audited truth straight
			// back — the coordinator's own computation is trusted.
			c.settleLocked(truth, "", true)
			c.eng.AdmitOutcome(truth)
			c.recovered++
			fresh++
			c.remaining--
		}
		c.mu.Unlock()
	}
	c.cond.Broadcast()
	if fresh > 0 {
		c.eng.SettleExternal(fresh, step, c.frontSnapshot, c.DistState)
	}
}

const (
	hedgeMinSamples = 8
	hedgeDurWindow  = 64
)

// noteShardDurLocked records one completed shard's lease-to-report
// latency for the adaptive hedge threshold.
func (c *Coordinator) noteShardDurLocked(d time.Duration) {
	c.durs = append(c.durs, d)
	if len(c.durs) > hedgeDurWindow {
		c.durs = c.durs[len(c.durs)-hedgeDurWindow:]
	}
}

// hedgeThresholdLocked returns how long a lease may stay outstanding
// before a hedge fires. A fixed positive Options.HedgeAfter wins;
// otherwise the threshold adapts to the fleet — twice the p95 of
// recently observed shard completion latencies, once enough samples
// exist for the percentile to mean anything. Negative disables.
func (c *Coordinator) hedgeThresholdLocked() (time.Duration, bool) {
	if c.opts.HedgeAfter > 0 {
		return c.opts.HedgeAfter, true
	}
	if c.opts.HedgeAfter < 0 || len(c.durs) < hedgeMinSamples {
		return 0, false
	}
	ds := append([]time.Duration(nil), c.durs...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	th := 2 * ds[len(ds)*95/100]
	if minTh := 10 * time.Millisecond; th < minTh {
		th = minTh
	}
	return th, true
}

// reaper re-queues expired leases and hedges straggling ones until the
// campaign stops. Hedging only fires when the queue is dry — while
// undone primary work exists, speculation would just steal a worker
// from it — and never hands a straggler its own hedge.
func (c *Coordinator) reaper() {
	tick := max(c.opts.leaseTTL()/4, 5*time.Millisecond)
	if ha := c.opts.HedgeAfter; ha > 0 {
		tick = min(tick, max(ha/2, time.Millisecond))
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for id, ls := range c.leases {
				if now.Before(ls.expiry) {
					continue
				}
				delete(c.leases, id)
				c.workerLocked(ls.worker).Expired++
				orphans := c.releaseLocked(ls.shard.jobs)
				if len(orphans) > 0 {
					c.enqueueLocked(shard{jobs: orphans, reassigned: true})
					c.workerLocked(ls.worker).JobsRequeued += int64(len(orphans))
				}
				c.logf("distrib: lease %d (%s) expired, %d jobs re-queued", id, ls.worker, len(orphans))
			}
			if threshold, ok := c.hedgeThresholdLocked(); ok && len(c.queue) == 0 {
				for id, ls := range c.leases {
					if ls.hedged || ls.shard.hedge {
						continue // one hedge per lease; hedges are not re-hedged
					}
					if now.Sub(ls.granted) < threshold {
						continue
					}
					live := ls.shard.jobs[:0:0]
					for _, j := range ls.shard.jobs {
						if !c.settled[j] {
							live = append(live, j)
						}
					}
					if len(live) == 0 {
						continue
					}
					ls.hedged = true
					c.enqueueLocked(shard{jobs: live, reassigned: true, hedge: true, hedgeBy: ls.worker})
					c.workerLocked(ls.worker).HedgesFired++
					c.logf("distrib: lease %d (%s) outstanding %v past the %v hedge threshold, %d jobs hedged",
						id, ls.worker, now.Sub(ls.granted).Round(time.Millisecond), threshold.Round(time.Millisecond), len(live))
				}
			}
			c.mu.Unlock()
		}
	}
}

func (c *Coordinator) workerLocked(id string) *explore.DistWorkerStats {
	w := c.workers[id]
	if w == nil {
		w = &explore.DistWorkerStats{}
		c.workers[id] = w
	}
	return w
}

// acceptLoop serves worker connections until the listener closes.
func (c *Coordinator) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go c.handle(conn)
	}
}

// handle speaks the request/response protocol with one worker
// connection until it errors, the worker leaves, or the campaign is
// torn down. Any transport or framing error just drops the
// connection: the worker reconnects with backoff, and whatever lease
// it held expires into the queue. The first frame is untrusted — size-
// capped and checked for protocol, token and campaign before anything
// else is read.
func (c *Coordinator) handle(conn net.Conn) {
	c.mu.Lock()
	c.conns[conn] = true
	c.mu.Unlock()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()

	readTimeout := max(4*c.opts.leaseTTL(), time.Minute)
	br := bufio.NewReader(conn)

	conn.SetReadDeadline(time.Now().Add(readTimeout))
	id, payload, err := readFrameN(br, maxHelloBytes)
	if err != nil || id != msgHello {
		return
	}
	var h hello
	if err := decodeMsg(msgHello, payload, &h); err != nil {
		return
	}
	if h.Proto != ProtoVersion {
		writeMsg(conn, msgReject, reject{Reason: fmt.Sprintf("protocol %d, want %d", h.Proto, ProtoVersion)})
		return
	}
	if c.opts.Token != "" && subtle.ConstantTimeCompare([]byte(h.Token), []byte(c.opts.Token)) != 1 {
		writeMsg(conn, msgReject, reject{Reason: "bad or missing token"})
		c.logf("distrib: worker %s rejected: bad or missing token", h.Worker)
		return
	}
	campaign := c.eng.CampaignID()
	if h.Campaign != campaign {
		writeMsg(conn, msgReject, reject{Reason: fmt.Sprintf("campaign mismatch: worker %q, coordinator %q", h.Campaign, campaign)})
		return
	}
	c.mu.Lock()
	quarantined := c.workerLocked(h.Worker).Quarantined
	c.mu.Unlock()
	if quarantined {
		writeMsg(conn, msgReject, reject{Reason: "worker is quarantined: a reported result failed verification"})
		return
	}
	if err := writeMsg(conn, msgWelcome, welcome{Campaign: campaign, Front: c.frontSnapshot()}); err != nil {
		return
	}
	c.logf("distrib: worker %s joined", h.Worker)

	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		id, payload, err := readFrame(br)
		if err != nil {
			return
		}
		switch id {
		case msgLeaseReq:
			if !c.grantLease(conn, h.Worker) {
				return
			}
		case msgResults:
			var rm resultsMsg
			if err := decodeMsg(id, payload, &rm); err != nil {
				return
			}
			if !c.mergeResults(conn, rm) {
				return
			}
		default:
			return
		}
	}
}

// grantLease answers one lease request: a shard, a wait hint, done, or
// (failed campaign, quarantined worker) a reject. Returns false when
// the connection should drop.
func (c *Coordinator) grantLease(conn net.Conn, worker string) bool {
	c.mu.Lock()
	if c.failure != nil {
		reason := c.failure.Error()
		c.mu.Unlock()
		writeMsg(conn, msgReject, reject{Reason: reason})
		return false
	}
	if w := c.workers[worker]; w != nil && w.Quarantined {
		c.mu.Unlock()
		writeMsg(conn, msgReject, reject{Reason: "worker is quarantined: a reported result failed verification"})
		return false
	}
	if c.doneAll {
		c.mu.Unlock()
		return writeMsg(conn, msgDone, done{}) == nil
	}
	var ls *leaseState
	for i := 0; i < len(c.queue) && ls == nil; {
		sh := c.queue[i]
		live := sh.jobs[:0:0]
		for _, j := range sh.jobs {
			if !c.settled[j] {
				live = append(live, j)
			}
		}
		if len(live) == 0 {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			continue // every job settled while the shard waited
		}
		if sh.hedge && sh.hedgeBy == worker {
			i++ // a straggler must not be handed its own hedge
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		sh.jobs = live
		c.nextLease++
		now := time.Now()
		ls = &leaseState{
			id:      c.nextLease,
			worker:  worker,
			step:    c.step,
			shard:   sh,
			granted: now,
			expiry:  now.Add(c.opts.leaseTTL()),
		}
		c.leases[ls.id] = ls
		w := c.workerLocked(worker)
		w.Leased++
		if sh.reassigned {
			w.Reassigned++
		}
	}
	if ls == nil {
		hint := c.opts.waitHint()
		c.mu.Unlock()
		return writeMsg(conn, msgWait, wait{Millis: hint.Milliseconds()}) == nil
	}
	jobs := make([]explore.JobSpec, len(ls.shard.jobs))
	for i, j := range ls.shard.jobs {
		jobs[i] = c.specs[j]
	}
	msg := lease{
		ID:         ls.id,
		Step:       ls.step,
		Jobs:       jobs,
		TTLMillis:  c.opts.leaseTTL().Milliseconds(),
		Front:      c.front.Points(),
		Reassigned: ls.shard.reassigned,
	}
	c.mu.Unlock()
	return writeMsg(conn, msgLease, msg) == nil
}

// pendingCheck is one fresh outcome held back for pre-admission
// verification.
type pendingCheck struct {
	spec explore.JobSpec
	key  string
	out  explore.JobOutcome
}

// mergeResults merges one shard report. Fresh outcomes are screened in
// three phases: (1) under the lock, identity-check every outcome
// against its leased spec (a mismatch is a provable lie — immediate
// quarantine), settle the ones verification does not select, and close
// out the lease; (2) with the lock released, re-execute the selected
// outcomes on the coordinator's own engine by pure live simulation;
// (3) under the lock again, settle the matches as verified and
// quarantine the reporter of any mismatch, settling the locally
// computed truth in its place. Verification runs BEFORE admission —
// after AdmitOutcome the engine would answer the re-execution from the
// cache and happily echo the lie back. First-settled-wins still holds:
// duplicates from expired or hedged leases settle nothing. Returns
// false when the connection should drop.
func (c *Coordinator) mergeResults(conn net.Conn, rm resultsMsg) bool {
	var (
		verify  []pendingCheck
		fresh   int64
		lied    bool
		lieWhy  string
		settany bool
	)
	c.mu.Lock()
	w := c.workerLocked(rm.Worker)
	if w.Quarantined {
		c.mu.Unlock()
		writeMsg(conn, msgReject, reject{Reason: "worker is quarantined: results refused"})
		return false
	}
	stale := rm.LeaseID != 0 && rm.LeaseID < c.staleBefore
	if !stale {
		for _, out := range rm.Outcomes {
			if out.Err != "" {
				if c.failure == nil {
					c.failure = fmt.Errorf("distrib: worker %s: job %d: %s", rm.Worker, out.Index, out.Err)
				}
				continue
			}
			if c.settled[out.Index] {
				continue // duplicate from an expired or hedged lease
			}
			spec, ok := c.specs[out.Index]
			if !ok {
				continue
			}
			if !explore.OutcomeMatchesSpec(spec, out) {
				lied = true
				lieWhy = fmt.Sprintf("job %d report claims another job's identity", out.Index)
				break
			}
			if c.verifySelectedLocked(spec, out) {
				verify = append(verify, pendingCheck{spec: spec, key: c.keys[out.Index], out: out})
				continue
			}
			c.settleLocked(out, rm.Worker, false)
			c.eng.AdmitOutcome(out)
			w.JobsSettled++
			fresh++
			c.remaining--
			settany = true
		}
	}
	if lied {
		// Drop everything else in the report, the delta included, and
		// let the quarantine wipe whatever this loop already settled —
		// those settles carry this worker's unverified provenance.
		c.quarantineLocked(rm.Worker, lieWhy)
		failed := c.failure
		c.mu.Unlock()
		c.cond.Broadcast()
		if failed != nil {
			writeMsg(conn, msgReject, reject{Reason: failed.Error()})
			return false
		}
		writeMsg(conn, msgReject, reject{Reason: "quarantined: " + lieWhy})
		return false
	}
	if ls, ok := c.leases[rm.LeaseID]; ok {
		delete(c.leases, rm.LeaseID)
		lw := c.workerLocked(ls.worker)
		lw.Completed++
		c.noteShardDurLocked(time.Since(ls.granted))
		if ls.shard.hedge && (settany || len(verify) > 0) {
			c.workerLocked(rm.Worker).HedgesWon++
		}
		// A report may be partial — a worker dying gracefully flushes
		// what it finished before disconnecting. Whatever the lease
		// covered that is neither settled, still covered elsewhere
		// (hedges), nor held for verification goes back in the queue,
		// counted against the worker that lost it.
		held := make(map[int]bool, len(verify))
		for _, v := range verify {
			held[v.spec.Index] = true
		}
		var requeue []int
		for _, j := range c.releaseLocked(ls.shard.jobs) {
			if !held[j] {
				requeue = append(requeue, j)
			}
		}
		if len(requeue) > 0 {
			c.enqueueLocked(shard{jobs: requeue, reassigned: true})
			lw.JobsRequeued += int64(len(requeue))
		}
	}
	if rm.Delta.Len() > 0 {
		added, dup := c.eng.Cache().MergeDelta(rm.Delta)
		w.EntriesReceived += int64(added + dup)
		w.EntriesDeduped += int64(dup)
	}
	failed := c.failure
	step := c.step
	progressed := c.remaining == 0 || failed != nil || c.restart
	c.mu.Unlock()
	if progressed {
		c.cond.Broadcast()
	}
	if fresh > 0 {
		c.eng.SettleExternal(fresh, step, c.frontSnapshot, c.DistState)
	}
	if failed != nil {
		writeMsg(conn, msgReject, reject{Reason: failed.Error()})
		return false
	}

	if len(verify) > 0 {
		truths := make([]explore.JobOutcome, len(verify))
		for i, v := range verify {
			truths[i] = c.eng.ResolveJobLive(v.spec)
		}
		fresh2, quarantined := c.adjudicate(rm.Worker, step, verify, truths)
		if fresh2 > 0 {
			c.eng.SettleExternal(fresh2, step, c.frontSnapshot, c.DistState)
		}
		if quarantined {
			writeMsg(conn, msgReject, reject{Reason: "quarantined: a reported result failed verification"})
			return false
		}
	}
	return writeMsg(conn, msgAck, ack{Front: c.frontSnapshot()}) == nil
}

// adjudicate applies verification verdicts: matches settle as
// verified, the first mismatch quarantines the worker, and every
// mismatched job settles with the locally computed truth — the
// coordinator paid for the re-execution, and its own result is
// trusted. Returns how many jobs it settled and whether the worker was
// quarantined.
func (c *Coordinator) adjudicate(worker string, step int, verify []pendingCheck, truths []explore.JobOutcome) (fresh int64, quarantined bool) {
	c.mu.Lock()
	w := c.workerLocked(worker)
	for i, v := range verify {
		truth := truths[i]
		if truth.Err != "" {
			if c.failure == nil {
				c.failure = fmt.Errorf("distrib: verifying job %d: %s", v.spec.Index, truth.Err)
			}
			continue
		}
		idx := v.spec.Index
		current := c.keys[idx] == v.key // the layout may have moved under a restart
		if !truth.Result.Aborted && truth.Result.Vec == v.out.Result.Vec {
			w.Verified++
			if current && !c.settled[idx] {
				c.settleLocked(v.out, worker, true)
				c.eng.AdmitOutcome(v.out)
				w.JobsSettled++
				fresh++
				c.remaining--
			} else if current && c.settled[idx] {
				// A hedge duplicate settled it between the phases; this
				// verification retroactively covers that settle.
				delete(c.unverified, v.key)
			}
			continue
		}
		c.quarantineLocked(worker, fmt.Sprintf("job %d reported %+v, verified %+v", idx, v.out.Result.Vec, truth.Result.Vec))
		quarantined = true
		if current && !c.settled[idx] {
			c.settleLocked(truth, "", true)
			c.eng.AdmitOutcome(truth)
			c.recovered++
			fresh++
			c.remaining--
		}
	}
	failed := c.failure
	progressed := c.remaining == 0 || failed != nil || c.restart
	c.mu.Unlock()
	if progressed || quarantined {
		c.cond.Broadcast()
	}
	return fresh, quarantined
}

// errRejected marks a permanent refusal from the coordinator.
var errRejected = errors.New("distrib: rejected by coordinator")
