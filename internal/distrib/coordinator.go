package distrib

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/explore"
	"repro/internal/pareto"
)

// Options tunes a coordinator. The zero value selects the defaults.
type Options struct {
	// ShardSize is how many jobs one lease carries (default 16).
	ShardSize int
	// LeaseTTL is how long a worker holds a shard before the
	// coordinator reaps and re-leases it (default 30s).
	LeaseTTL time.Duration
	// WaitHint is the retry delay handed to workers when nothing is
	// leasable (default 50ms).
	WaitHint time.Duration
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return 16
	}
	return o.ShardSize
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return 30 * time.Second
	}
	return o.LeaseTTL
}

func (o Options) waitHint() time.Duration {
	if o.WaitHint <= 0 {
		return 50 * time.Millisecond
	}
	return o.WaitHint
}

// shard is one leasable unit of work: job indexes into the
// coordinator's spec table. reassigned marks a shard a previous lease
// lost.
type shard struct {
	jobs       []int
	reassigned bool
}

// leaseState is one outstanding lease.
type leaseState struct {
	id     uint64
	worker string
	step   int
	shard  shard
	expiry time.Time
}

// Coordinator owns a distributed campaign: the deterministic job
// space, the shard queue, outstanding leases, the exact survivor
// front, and the merge of everything workers send back. All durable
// state lives in the engine's cache; the coordinator itself is soft
// state that a restart rebuilds.
type Coordinator struct {
	app  apps.App
	eng  *explore.Engine
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond
	step      int
	total1    int
	specs     map[int]explore.JobSpec
	settled   map[int]bool
	remaining int // unsettled jobs of the current step
	queue     []shard
	leases    map[uint64]*leaseState
	nextLease uint64
	front     *pareto.OnlineFront
	res1      map[int]explore.Result
	workers   map[string]*explore.DistWorkerStats
	conns     map[net.Conn]bool
	failure   error
	doneAll   bool
	stop      chan struct{}
}

// NewCoordinator builds a coordinator for the app's campaign as
// configured by eng. The engine must have a cache (it is the durable
// state) and is the same engine the caller later reports from.
func NewCoordinator(app apps.App, eng *explore.Engine, opts Options) *Coordinator {
	c := &Coordinator{
		app:     app,
		eng:     eng,
		opts:    opts,
		specs:   make(map[int]explore.JobSpec),
		settled: make(map[int]bool),
		leases:  make(map[uint64]*leaseState),
		front:   pareto.NewOnlineFront(),
		res1:    make(map[int]explore.Result),
		workers: make(map[string]*explore.DistWorkerStats),
		conns:   make(map[net.Conn]bool),
		stop:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// DistState snapshots the per-worker bookkeeping (for checkpoints and
// the CLI stats table).
func (c *Coordinator) DistState() *explore.DistState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.distLocked()
}

func (c *Coordinator) distLocked() *explore.DistState {
	d := &explore.DistState{Workers: make(map[string]explore.DistWorkerStats, len(c.workers))}
	for id, w := range c.workers {
		d.Workers[id] = *w
	}
	return d
}

// Drain blocks until every worker connection has closed or the timeout
// elapses. After a successful Run, polling workers each receive done
// on their next lease request and leave; draining before exiting lets
// them finish cleanly instead of observing the coordinator vanish and
// redialing into the void. Workers that already died simply have no
// connection; the timeout bounds waiting for hung ones.
func (c *Coordinator) Drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.conns)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// frontSnapshot copies the current exact survivor front.
func (c *Coordinator) frontSnapshot() []pareto.Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.front.Points()
}

// Run drives the campaign over ln until every job of both exploration
// steps is settled in the engine's cache, then returns nil with the
// listener still serving — late workers keep receiving done until the
// caller closes ln. On context cancellation or a worker-reported
// simulation failure it snapshots a checkpoint, closes the listener
// and every connection (workers fall back to retry/backoff — the
// resume path), and returns the error.
//
// A restarted coordinator resumes from its cache automatically: the
// warm pre-pass settles every job the previous campaign proved before
// any shard is leased.
func (c *Coordinator) Run(ctx context.Context, ln net.Listener) error {
	defer context.AfterFunc(ctx, c.cond.Broadcast)()
	go c.acceptLoop(ln)
	go c.reaper()

	err := c.campaign(ctx)
	c.mu.Lock()
	if err == nil {
		c.doneAll = true
	} else if c.failure == nil {
		c.failure = err
	}
	conns := make([]net.Conn, 0, len(c.conns))
	for cn := range c.conns {
		conns = append(conns, cn)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	close(c.stop)
	if err != nil {
		c.eng.CheckpointExternal(c.stepNow(), c.frontSnapshot, c.DistState)
		ln.Close()
		for _, cn := range conns {
			cn.Close()
		}
	}
	return err
}

func (c *Coordinator) stepNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// campaign lays out and waits out both exploration steps.
func (c *Coordinator) campaign(ctx context.Context) error {
	configs := explore.Configs(c.app)
	if len(configs) == 0 {
		return fmt.Errorf("distrib: %s has no network configurations", c.app.Name())
	}
	ref := configs[0]
	dominant, total1, err := c.eng.PlanStep1(ctx, ref)
	if err != nil {
		return err
	}

	// Step 1: the full combination space against the reference
	// configuration, guarded — workers prune against the broadcast
	// front exactly as a flat single-process scan would.
	step1 := make([]explore.JobSpec, total1)
	for combo := 0; combo < total1; combo++ {
		step1[combo] = explore.JobSpec{
			Index:   combo,
			Cfg:     ref,
			Assign:  c.eng.AssignForCombo(dominant, combo),
			Guarded: true,
		}
	}
	if err := c.runStep(ctx, 1, total1, step1); err != nil {
		return err
	}

	// Survivors: the exact front over step-1 results, by combination
	// index for a deterministic step-2 layout.
	c.mu.Lock()
	pts := c.front.Points()
	survivors := make([]explore.Result, 0, len(pts))
	tags := make([]int, 0, len(pts))
	for _, p := range pts {
		tags = append(tags, p.Tag)
	}
	sort.Ints(tags)
	for _, tag := range tags {
		survivors = append(survivors, c.res1[tag])
	}
	c.mu.Unlock()
	c.logf("distrib: step 1 settled, %d survivors", len(survivors))

	// Step 2: survivors crossed with every non-reference
	// configuration, exact — per-configuration fronts live only in the
	// final report, so remote guards have nothing sound to prune with
	// and full coverage keeps the cross-configuration charts complete.
	var step2 []explore.JobSpec
	idx := total1
	for _, cfg := range configs {
		if cfg.String() == ref.String() {
			continue
		}
		for _, sv := range survivors {
			step2 = append(step2, explore.JobSpec{Index: idx, Cfg: cfg, Assign: sv.Assign})
			idx++
		}
	}
	if err := c.runStep(ctx, 2, len(step2), step2); err != nil {
		return err
	}
	c.logf("distrib: step 2 settled")
	return nil
}

// runStep installs one step's job space — settling everything the
// cache already proves in a warm pre-pass — and blocks until workers
// settle the rest.
func (c *Coordinator) runStep(ctx context.Context, step, total int, jobs []explore.JobSpec) error {
	var cold []int
	warm := 0
	c.mu.Lock()
	c.step = step
	if step == 1 {
		c.total1 = total
	}
	for _, spec := range jobs {
		c.specs[spec.Index] = spec
		if out, ok := c.eng.CachedOutcome(spec); ok {
			c.settleLocked(out)
			warm++
			continue
		}
		cold = append(cold, spec.Index)
	}
	c.remaining = len(cold)
	size := c.opts.shardSize()
	for len(cold) > 0 {
		n := min(size, len(cold))
		c.queue = append(c.queue, shard{jobs: cold[:n]})
		cold = cold[n:]
	}
	c.mu.Unlock()
	if warm > 0 {
		c.eng.SettleExternal(int64(warm), step, c.frontSnapshot, c.DistState)
		c.logf("distrib: step %d: %d of %d jobs already settled in cache", step, warm, total)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for c.remaining > 0 && c.failure == nil && ctx.Err() == nil {
		c.cond.Wait()
	}
	if c.failure != nil {
		return c.failure
	}
	return ctx.Err()
}

// settleLocked marks one outcome settled, feeding exact step-1 results
// into the survivor front. Call with c.mu held and the outcome fresh
// (not a duplicate).
func (c *Coordinator) settleLocked(out explore.JobOutcome) {
	c.settled[out.Index] = true
	if out.Index < c.total1 && out.Err == "" && !out.Result.Aborted {
		c.front.Add(out.Result.Point(out.Index))
		c.res1[out.Index] = out.Result
	}
}

// reaper re-queues expired leases until the campaign stops.
func (c *Coordinator) reaper() {
	tick := max(c.opts.leaseTTL()/4, 5*time.Millisecond)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for id, ls := range c.leases {
				if now.Before(ls.expiry) {
					continue
				}
				delete(c.leases, id)
				c.workerLocked(ls.worker).Expired++
				live := ls.shard.jobs[:0:0]
				for _, j := range ls.shard.jobs {
					if !c.settled[j] {
						live = append(live, j)
					}
				}
				if len(live) > 0 {
					c.queue = append(c.queue, shard{jobs: live, reassigned: true})
				}
				c.logf("distrib: lease %d (%s) expired, %d jobs re-queued", id, ls.worker, len(live))
			}
			c.mu.Unlock()
		}
	}
}

func (c *Coordinator) workerLocked(id string) *explore.DistWorkerStats {
	w := c.workers[id]
	if w == nil {
		w = &explore.DistWorkerStats{}
		c.workers[id] = w
	}
	return w
}

// acceptLoop serves worker connections until the listener closes.
func (c *Coordinator) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go c.handle(conn)
	}
}

// handle speaks the request/response protocol with one worker
// connection until it errors, the worker leaves, or the campaign is
// torn down. Any transport or framing error just drops the
// connection: the worker reconnects with backoff, and whatever lease
// it held expires into the queue.
func (c *Coordinator) handle(conn net.Conn) {
	c.mu.Lock()
	c.conns[conn] = true
	c.mu.Unlock()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()

	readTimeout := max(4*c.opts.leaseTTL(), time.Minute)
	br := bufio.NewReader(conn)
	next := func(want byte) ([]byte, error) {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		id, payload, err := readFrame(br)
		if err != nil {
			return nil, err
		}
		if id != want {
			return nil, fmt.Errorf("distrib: expected %s, got %s", msgName(want), msgName(id))
		}
		return payload, nil
	}

	payload, err := next(msgHello)
	if err != nil {
		return
	}
	var h hello
	if err := decodeMsg(msgHello, payload, &h); err != nil {
		return
	}
	campaign := c.eng.CampaignID()
	if h.Proto != ProtoVersion {
		writeMsg(conn, msgReject, reject{Reason: fmt.Sprintf("protocol %d, want %d", h.Proto, ProtoVersion)})
		return
	}
	if h.Campaign != campaign {
		writeMsg(conn, msgReject, reject{Reason: fmt.Sprintf("campaign mismatch: worker %q, coordinator %q", h.Campaign, campaign)})
		return
	}
	c.mu.Lock()
	c.workerLocked(h.Worker)
	c.mu.Unlock()
	if err := writeMsg(conn, msgWelcome, welcome{Campaign: campaign, Front: c.frontSnapshot()}); err != nil {
		return
	}
	c.logf("distrib: worker %s joined", h.Worker)

	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		id, payload, err := readFrame(br)
		if err != nil {
			return
		}
		switch id {
		case msgLeaseReq:
			if !c.grantLease(conn, h.Worker) {
				return
			}
		case msgResults:
			var rm resultsMsg
			if err := decodeMsg(id, payload, &rm); err != nil {
				return
			}
			if !c.mergeResults(conn, rm) {
				return
			}
		default:
			return
		}
	}
}

// grantLease answers one lease request: a shard, a wait hint, done, or
// (failed campaign) a reject. Returns false when the connection should
// drop.
func (c *Coordinator) grantLease(conn net.Conn, worker string) bool {
	c.mu.Lock()
	if c.failure != nil {
		reason := c.failure.Error()
		c.mu.Unlock()
		writeMsg(conn, msgReject, reject{Reason: reason})
		return false
	}
	if c.doneAll {
		c.mu.Unlock()
		return writeMsg(conn, msgDone, done{}) == nil
	}
	var ls *leaseState
	for len(c.queue) > 0 && ls == nil {
		sh := c.queue[0]
		c.queue = c.queue[1:]
		live := sh.jobs[:0:0]
		for _, j := range sh.jobs {
			if !c.settled[j] {
				live = append(live, j)
			}
		}
		if len(live) == 0 {
			continue // every job settled while the shard waited
		}
		sh.jobs = live
		c.nextLease++
		ls = &leaseState{
			id:     c.nextLease,
			worker: worker,
			step:   c.step,
			shard:  sh,
			expiry: time.Now().Add(c.opts.leaseTTL()),
		}
		c.leases[ls.id] = ls
		w := c.workerLocked(worker)
		w.Leased++
		if sh.reassigned {
			w.Reassigned++
		}
	}
	if ls == nil {
		hint := c.opts.waitHint()
		c.mu.Unlock()
		return writeMsg(conn, msgWait, wait{Millis: hint.Milliseconds()}) == nil
	}
	jobs := make([]explore.JobSpec, len(ls.shard.jobs))
	for i, j := range ls.shard.jobs {
		jobs[i] = c.specs[j]
	}
	msg := lease{
		ID:         ls.id,
		Step:       ls.step,
		Jobs:       jobs,
		TTLMillis:  c.opts.leaseTTL().Milliseconds(),
		Front:      c.front.Points(),
		Reassigned: ls.shard.reassigned,
	}
	c.mu.Unlock()
	return writeMsg(conn, msgLease, msg) == nil
}

// mergeResults merges one shard report: fresh outcomes settle (first-
// settled wins; duplicates from an expired-and-reassigned lease are
// no-ops), the compositional delta dedupes into the cache, and the
// worker gets an ack carrying the refreshed front. Returns false when
// the connection should drop.
func (c *Coordinator) mergeResults(conn net.Conn, rm resultsMsg) bool {
	var fresh int64
	c.mu.Lock()
	w := c.workerLocked(rm.Worker)
	for _, out := range rm.Outcomes {
		if out.Err != "" {
			if c.failure == nil {
				c.failure = fmt.Errorf("distrib: worker %s: job %d: %s", rm.Worker, out.Index, out.Err)
			}
			continue
		}
		if c.settled[out.Index] {
			continue // duplicate from an expired, reassigned lease
		}
		// A fresh settle always belongs to the running step: earlier
		// steps completed before this one was laid out, and later
		// steps' specs do not exist yet, so no lease carries them.
		c.settleLocked(out)
		c.eng.AdmitOutcome(out)
		fresh++
		c.remaining--
	}
	if ls, ok := c.leases[rm.LeaseID]; ok {
		delete(c.leases, rm.LeaseID)
		c.workerLocked(ls.worker).Completed++
		// A report may be partial — a worker dying gracefully flushes
		// what it finished before disconnecting. Whatever the lease
		// covered and the report left unsettled goes back in the queue;
		// only expiry would reclaim it otherwise, and only while the
		// lease still exists.
		var leftover []int
		for _, idx := range ls.shard.jobs {
			if !c.settled[idx] {
				leftover = append(leftover, idx)
			}
		}
		if len(leftover) > 0 {
			c.queue = append(c.queue, shard{jobs: leftover, reassigned: true})
			c.workerLocked(ls.worker).Reassigned++
		}
	}
	if rm.Delta.Len() > 0 {
		added, dup := c.eng.Cache().MergeDelta(rm.Delta)
		w.EntriesReceived += int64(added + dup)
		w.EntriesDeduped += int64(dup)
	}
	failed := c.failure
	step := c.step
	progressed := c.remaining == 0 || failed != nil
	c.mu.Unlock()
	if progressed {
		c.cond.Broadcast()
	}
	if fresh > 0 {
		c.eng.SettleExternal(fresh, step, c.frontSnapshot, c.DistState)
	}
	if failed != nil {
		writeMsg(conn, msgReject, reject{Reason: failed.Error()})
		return false
	}
	return writeMsg(conn, msgAck, ack{Front: c.frontSnapshot()}) == nil
}

// errRejected marks a permanent refusal from the coordinator.
var errRejected = errors.New("distrib: rejected by coordinator")
