package distrib

// The composed chaos soak: a seeded faultio.Plan layers every failure
// mode this package defends against into one campaign — a lying
// worker (mantissa-flipped objectives: finite, close, wrong), a
// straggler on a slow and occasionally tearing link, and a worker
// killed mid-campaign — and the final front must still be
// bit-identical in membership to a single-process run, with the liar
// quarantined.

import (
	"context"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/faultio"
)

func chaosSoak(t *testing.T, appName string, opts explore.Options, copts Options, seed int64, killAfter time.Duration) {
	t.Helper()
	a := app(t, appName)

	ref, _, err := explore.NewEngine(a, opts).Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := survivorLabels(ref.Survivors)

	plan := faultio.NewPlan(seed)
	flip := plan.Mantissa("liar")
	var mu sync.Mutex
	errs := make(map[int]error)
	h := campaignHarness{
		app: a, opts: opts, copts: copts,
		workers: 4,
		// w0 honest; w1 lies about every exact objective vector; w2
		// straggles on an injected-latency link that sometimes tears;
		// w3 is killed mid-campaign.
		mutate: map[int]func(*explore.JobOutcome){
			1: func(o *explore.JobOutcome) {
				if o.Err != "" || o.Result.Aborted {
					return
				}
				o.Result.Vec.Energy = flip(o.Result.Vec.Energy)
				o.Result.Vec.Time = flip(o.Result.Vec.Time)
			},
		},
		connWrap: map[int]func(net.Conn) net.Conn{},
		killTime: map[int]time.Duration{3: killAfter},
		onExit: func(i int, err error) {
			mu.Lock()
			errs[i] = err
			mu.Unlock()
		},
	}
	h.connWrap[2] = plan.WrapConn("straggler", faultio.ConnScript{
		Latency:  2 * time.Millisecond,
		TearProb: 0.3,
		TearMin:  512,
		TearMax:  8192,
	})
	coord, ceng := h.run(t)

	dist := coord.DistState()
	liar := dist.Workers["w1"]
	if !liar.Quarantined {
		t.Fatal("lying worker survived the soak unquarantined")
	}
	if liar.Mismatched == 0 {
		t.Error("quarantined liar has no recorded mismatch")
	}
	for key, who := range dist.Unverified {
		if who == "w1" {
			t.Errorf("unverified provenance for %s still names the quarantined liar", key)
		}
	}

	gotLive := make([]string, 0)
	for _, p := range coord.frontSnapshot() {
		gotLive = append(gotLive, p.Label)
	}
	sort.Strings(gotLive)
	if !equalStrings(gotLive, want) {
		t.Errorf("soak live front %v, want %v", gotLive, want)
	}
	s1, _, err := ceng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := survivorLabels(s1.Survivors); !equalStrings(got, want) {
		t.Errorf("soak warm-rerun survivors %v, want %v", got, want)
	}
}

func TestChaosSoakDRRK3(t *testing.T) {
	chaosSoak(t, "DRR",
		explore.Options{TracePackets: 200, DominantK: 3, BoundPrune: true},
		Options{ShardSize: 16, LeaseTTL: 300 * time.Millisecond, VerifyRate: 1.0},
		1, 100*time.Millisecond)
}

func TestChaosSoakFlowMonK5(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-combination soak skipped in -short")
	}
	chaosSoak(t, "FlowMon",
		explore.Options{TracePackets: 50, DominantK: 5, BoundPrune: true},
		Options{ShardSize: 1024, LeaseTTL: 5 * time.Second, VerifyRate: 1.0},
		2, 800*time.Millisecond)
}
