package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestKindsRoundTrip(t *testing.T) {
	kinds := repro.Kinds()
	if len(kinds) != 10 {
		t.Fatalf("Kinds() = %d, want 10", len(kinds))
	}
	for _, k := range kinds {
		got, err := repro.ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
}

func TestAppsCatalog(t *testing.T) {
	apps := repro.Apps()
	if len(apps) != 4 {
		t.Fatalf("Apps() = %d, want the paper's 4 case studies", len(apps))
	}
	want := []string{"Route", "URL", "IPchains", "DRR"}
	for i, a := range apps {
		if a.Name() != want[i] {
			t.Errorf("app %d = %q, want %q", i, a.Name(), want[i])
		}
		byName, err := repro.AppByName(want[i])
		if err != nil || byName.Name() != want[i] {
			t.Errorf("AppByName(%q): %v, %v", want[i], byName, err)
		}
	}
	if _, err := repro.AppByName("Quake"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestNewListAllKinds(t *testing.T) {
	for _, k := range repro.Kinds() {
		p := repro.NewPlatform()
		l := repro.NewList[string](k, p, 32)
		l.Append("hello")
		l.Append("world")
		if l.Len() != 2 || l.Get(1) != "world" {
			t.Fatalf("%v: list misbehaved", k)
		}
		if p.Metrics().Accesses == 0 {
			t.Errorf("%v: platform saw no accesses", k)
		}
	}
}

func TestBuiltinTraceAndParams(t *testing.T) {
	names := repro.BuiltinTraceNames()
	if len(names) != 10 {
		t.Fatalf("built-in traces = %d, want 10", len(names))
	}
	tr, err := repro.BuiltinTrace("Berry", 500)
	if err != nil {
		t.Fatal(err)
	}
	params := repro.ExtractParams(tr)
	if params.PacketCount != 500 || params.Nodes == 0 {
		t.Fatalf("params = %+v", params)
	}
}

func TestSimulateFacade(t *testing.T) {
	app, err := repro.AppByName("DRR")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := repro.ConfigsFor(app)
	if len(cfgs) != 5 {
		t.Fatalf("DRR configs = %d, want 5", len(cfgs))
	}
	vec, sum, err := repro.Simulate(app, cfgs[0], repro.OriginalAssignment(app), repro.Options{TracePackets: 300})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Energy <= 0 || sum.Packets != 300 {
		t.Fatalf("vec=%v packets=%d", vec, sum.Packets)
	}
}

func TestMethodologyForEndToEnd(t *testing.T) {
	m, err := repro.MethodologyFor("URL", 400)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.App != "URL" || rep.Reduced == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := repro.MethodologyFor("nope", 0); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestParetoHelpers(t *testing.T) {
	pts := []repro.Point{
		{Label: "a", Vec: repro.Vector{Energy: 1, Time: 2, Accesses: 1, Footprint: 1}},
		{Label: "b", Vec: repro.Vector{Energy: 2, Time: 1, Accesses: 1, Footprint: 1}},
		{Label: "c", Vec: repro.Vector{Energy: 3, Time: 3, Accesses: 3, Footprint: 3}},
	}
	front := repro.ParetoFront(pts)
	if len(front) != 2 {
		t.Fatalf("front = %v", front)
	}
	if best := repro.BestPoint(pts, repro.Time); best.Label != "b" {
		t.Errorf("BestPoint = %q", best.Label)
	}
	f2 := repro.ParetoFront2D(pts, repro.Time, repro.Energy)
	if len(f2) != 2 {
		t.Errorf("2D front = %v", f2)
	}
}

func TestDefaultPlatformConfig(t *testing.T) {
	cfg := repro.DefaultPlatformConfig()
	if cfg.L1.SizeBytes == 0 || cfg.ClockHz == 0 {
		t.Fatalf("degenerate default config %+v", cfg)
	}
	p := repro.NewPlatformWith(cfg)
	if p.Metrics().Accesses != 0 {
		t.Error("fresh platform not clean")
	}
}

func TestFacadeDocNamesMatchPaper(t *testing.T) {
	// The facade must speak the paper's vocabulary.
	for _, k := range repro.Kinds() {
		name := k.String()
		ok := name == "AR" || name == "AR(P)" || strings.HasPrefix(name, "SLL") || strings.HasPrefix(name, "DLL")
		if !ok {
			t.Errorf("kind name %q not from the paper's library", name)
		}
	}
}
